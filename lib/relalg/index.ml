module Hash = struct
  type t = { key_idxs : int list; tbl : Row.t list ref Row.Tbl.t }

  let build rel key_idxs =
    let tbl = Row.Tbl.create (max 16 (Relation.cardinality rel)) in
    Relation.iter
      (fun row ->
        let key = Row.project row key_idxs in
        match Row.Tbl.find_opt tbl key with
        | Some cell -> cell := row :: !cell
        | None -> Row.Tbl.add tbl key (ref [ row ]))
      rel;
    { key_idxs; tbl }

  let key_idxs t = t.key_idxs

  let probe t key =
    match Row.Tbl.find_opt t.tbl key with Some cell -> !cell | None -> []

  let distinct_keys t = Row.Tbl.length t.tbl
end

module Sorted = struct
  type t = { key_idxs : int list; rows : Row.t array }

  let build rel key_idxs =
    let rows = Array.copy (Relation.rows rel) in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | i :: rest ->
          let c = Value.compare_total a.(i) b.(i) in
          if c <> 0 then c else go rest
      in
      go key_idxs
    in
    Array.sort cmp rows;
    { key_idxs; rows }

  let key_idxs t = t.key_idxs

  let first_key t row =
    match t.key_idxs with
    | [] -> invalid_arg "Index.Sorted: empty key"
    | i :: _ -> row.(i)

  (* Smallest index whose first-key-column value is >= (or > if strict) v. *)
  let lower_bound t v strict =
    let n = Array.length t.rows in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        let c = Value.compare_total (first_key t t.rows.(mid)) v in
        let keep_right = if strict then c <= 0 else c < 0 in
        if keep_right then go (mid + 1) hi else go lo mid
    in
    go 0 n

  let bounds t ~lo ~hi =
    let n = Array.length t.rows in
    let start =
      match lo with
      | None -> 0
      | Some (v, `Inclusive) -> lower_bound t v false
      | Some (v, `Strict) -> lower_bound t v true
    in
    let stop =
      match hi with
      | None -> n
      | Some (v, `Inclusive) -> lower_bound t v true
      | Some (v, `Strict) -> lower_bound t v false
    in
    (start, stop)

  let range t ~lo ~hi =
    let start, stop = bounds t ~lo ~hi in
    let rec seq i () =
      if i >= stop then Seq.Nil else Seq.Cons (t.rows.(i), seq (i + 1))
    in
    seq start

  let iter_range t ~lo ~hi f =
    let start, stop = bounds t ~lo ~hi in
    for i = start to stop - 1 do
      f t.rows.(i)
    done

  let cardinality t = Array.length t.rows
end

type t =
  | Hash_index of Hash.t
  | Sorted_index of Sorted.t

let columns = function
  | Hash_index h -> Hash.key_idxs h
  | Sorted_index s -> Sorted.key_idxs s
