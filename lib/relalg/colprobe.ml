(* Vectorized per-binding inner evaluation for NLJP over columnar inner
   relations (DESIGN.md §8).

   Θ conjuncts of shape [r_col op f(binding)] compile once into
   parameterized probes (Compile.param_probes).  Per binding, each probe's
   comparison constant is computed and tested against every block's zone
   map: a refuted probe proves the block joins no row of Q_R(b) and the
   block is skipped without touching its vectors — Figure 4's BT index
   configuration generalized to columnar data skipping.  Surviving blocks
   evaluate Θ through the typed comparison kernels into a selection
   vector, and COUNT/SUM/MIN/MAX/AVG aggregate directly over the unboxed
   int/float vectors under that selection — no Row.t is ever built.  When
   G_R is a dict-coded column, grouping runs on the integer codes and
   decodes only at finalize.

   Numeric accumulation mirrors Agg's left-fold of [Value.add] exactly
   (int mode until the first float, then float for good, in row order), so
   results — including float rounding — are bit-identical to the row path.

   A built [t] is immutable; all evaluation scratch is allocated per call,
   so one instance is safely shared across worker domains. *)

open Column

(* A block whose physical column type deviates from what [build] verified
   (all-numeric for aggregate inputs, all-dict for dictionary grouping).
   Unreachable for today's immutable cstores, but instead of aborting the
   process the evaluator raises and NLJP degrades to the row path, surfacing
   a [vector off: ...] note in the trace. *)
exception Fallback of string

(* ---- typed per-row comparison tests (shared with Colscan's σ) ---- *)

(* Compile one (column, op, constant) test into an [int -> bool] over a
   block, reading the typed vector directly.  NULL rows never match (SQL
   comparison semantics), which the numeric fast paths get from the null
   bitmap and the generic path gets from Compile.value_cmp. *)
let row_test cs (b : Cstore.block) col (op : Expr.cmp) (v : Value.t) : int -> bool =
  let vec = b.Cstore.cols.(col) in
  let null_guard bm test =
    match bm with
    | None -> test
    | Some bm -> fun i -> (not (Bitset.get bm i)) && test i
  in
  let generic () =
    let vc = Compile.value_cmp op in
    fun i -> vc (Cstore.value_at cs b col i) v
  in
  if Value.is_nan v then (fun _ -> false)  (* NaN compares false to everything *)
  else
  match vec, v with
  | Cstore.C_int (a, bm), Value.Int k ->
    let test =
      match op with
      | Expr.Eq -> fun i -> a.(i) = k
      | Expr.Ne -> fun i -> a.(i) <> k
      | Expr.Lt -> fun i -> a.(i) < k
      | Expr.Le -> fun i -> a.(i) <= k
      | Expr.Gt -> fun i -> a.(i) > k
      | Expr.Ge -> fun i -> a.(i) >= k
    in
    null_guard bm test
  | Cstore.C_int (a, bm), Value.Float f ->
    let test =
      match op with
      | Expr.Eq -> fun i -> float_of_int a.(i) = f
      | Expr.Ne -> fun i -> float_of_int a.(i) <> f
      | Expr.Lt -> fun i -> float_of_int a.(i) < f
      | Expr.Le -> fun i -> float_of_int a.(i) <= f
      | Expr.Gt -> fun i -> float_of_int a.(i) > f
      | Expr.Ge -> fun i -> float_of_int a.(i) >= f
    in
    null_guard bm test
  | Cstore.C_float (a, bm), (Value.Int _ | Value.Float _) ->
    let f = match v with Value.Int k -> float_of_int k | Value.Float f -> f | _ -> 0. in
    let test =
      (* [Ne] is spelled [< ||  >] so a stored NaN matches nothing, like the
         row path; the other operators get that from IEEE semantics. *)
      match op with
      | Expr.Eq -> fun i -> a.(i) = f
      | Expr.Ne -> fun i -> a.(i) < f || a.(i) > f
      | Expr.Lt -> fun i -> a.(i) < f
      | Expr.Le -> fun i -> a.(i) <= f
      | Expr.Gt -> fun i -> a.(i) > f
      | Expr.Ge -> fun i -> a.(i) >= f
    in
    null_guard bm test
  | Cstore.C_dict (codes, bm), Value.Str s ->
    (match op, Cstore.dict cs col with
     | ((Expr.Eq | Expr.Ne) as op), Some d ->
       (* Equality against the dictionary is one code comparison per row;
          an absent string matches nothing (Eq) / every non-null row (Ne). *)
       let eq = op = Expr.Eq in
       (match Dict.find_opt d s with
        | Some code ->
          if eq then null_guard bm (fun i -> codes.(i) = code)
          else null_guard bm (fun i -> codes.(i) <> code)
        | None -> if eq then fun _ -> false else null_guard bm (fun _ -> true))
     | _ -> generic ())
  | _ -> generic ()

(* ---- the compiled evaluator ---- *)

type kernel =
  | K_count_star
  | K_count of int  (* non-null count of a column *)
  | K_sum of int
  | K_min of int
  | K_max of int
  | K_avg of int

type grouping =
  | G_single  (* G_R = ∅: one partition per binding *)
  | G_dict of int * Dict.t  (* group on dictionary codes, decode at finalize *)
  | G_generic of int array  (* per-row key over these columns *)

(* A transferred Bloom filter on one inner column (predicate transfer,
   DESIGN.md §11): blocks whose zone map misses the filter's observed range
   are refuted like a zone probe, surviving rows must pass membership.
   Dict-coded columns precompute a per-dictionary pass table at build. *)
type bloom_filter = {
  bf_col : int;
  bf_bloom : Bloom.t;
  bf_dict_pass : bool array option;
}

type t = {
  cs : Cstore.t;
  probes : Compile.param_probe array;
  zops : Zmap.cmp array;  (* probe ops translated for the zone maps *)
  gates : (Row.t -> bool) array;  (* binding-only conjuncts of Θ *)
  extra : bloom_filter array;  (* binding-independent transferred filters *)
  grouping : grouping;
  kernels : kernel array;
  scratch_len : int;  (* largest block *)
}

type outcome = {
  groups : (Row.t * Agg.state list) list;
  blocks_skipped : int;
  blocks_scanned : int;
}

(* ---- build-time checks ---- *)

(* Column-kind checks go through [Cstore.col_kind], which is resident
   metadata for paged stores — building an NLJP evaluator over a [.sic]
   disk tier must not fault in every block just to inspect types.  Only a
   [K_varied] numeric candidate (int blocks mixed with float blocks, which
   the kernels do support) falls back to inspecting the blocks. *)
let all_blocks_match cs pred =
  let ok = ref true in
  Cstore.iter_blocks (fun b -> if not (pred b) then ok := false) cs;
  !ok

let numeric_col cs ci =
  match Cstore.col_kind cs ci with
  | Cstore.K_int | Cstore.K_float | Cstore.K_empty -> true
  | Cstore.K_varied ->
    all_blocks_match cs (fun b ->
        match b.Cstore.cols.(ci) with
        | Cstore.C_int _ | Cstore.C_float _ -> true
        | _ -> false)
  | Cstore.K_dict | Cstore.K_bool | Cstore.K_mixed -> false

let dict_col cs ci = Cstore.col_kind cs ci = Cstore.K_dict

let build ~extra ~binding ~inner:cs ~theta ~gr_idx ~aggs =
  let schema = Cstore.schema cs in
  let probes, gates, exact = Compile.param_probes ~binding ~inner:schema theta in
  if not exact then Error "Θ has conjuncts outside the r_col-vs-binding shape"
  else begin
    let col_of e =
      match e with
      | Expr.Col c ->
        (match Schema.index_of_col schema c with
         | i -> Some i
         | exception Schema.Unknown_column _ -> None
         | exception Schema.Ambiguous_column _ -> None)
      | _ -> None
    in
    let kernel_of (f : Agg.func) =
      match f with
      | Agg.Count_star -> Ok K_count_star
      | Agg.Count e ->
        (match col_of e with
         | Some i -> Ok (K_count i)
         | None -> Error (Agg.to_string f ^ " ranges over a computed expression"))
      | Agg.Sum _ | Agg.Min _ | Agg.Max _ | Agg.Avg _ ->
        (match col_of (Option.get (Agg.input_expr f)) with
         | None -> Error (Agg.to_string f ^ " ranges over a computed expression")
         | Some i ->
           if not (numeric_col cs i) then
             Error (Agg.to_string f ^ ": input column is not numeric in every block")
           else
             Ok
               (match f with
                | Agg.Sum _ -> K_sum i
                | Agg.Min _ -> K_min i
                | Agg.Max _ -> K_max i
                | _ -> K_avg i))
      | Agg.Count_distinct _ -> Error "COUNT(DISTINCT) has no bounded kernel state"
    in
    let rec mk_kernels acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest ->
        (match kernel_of f with
         | Ok k -> mk_kernels (k :: acc) rest
         | Error e -> Error e)
    in
    match mk_kernels [] aggs with
    | Error e -> Error e
    | Ok kernels ->
      let grouping =
        match gr_idx with
        | [] -> G_single
        | [ g ] when dict_col cs g ->
          (match Cstore.dict cs g with
           | Some d -> G_dict (g, d)
           | None -> G_generic [| g |])
        | gs -> G_generic (Array.of_list gs)
      in
      Ok
        {
          cs;
          probes = Array.of_list probes;
          zops =
            Array.of_list
              (List.map (fun p -> Compile.zmap_cmp p.Compile.pp_op) probes);
          gates = Array.of_list gates;
          extra =
            Array.of_list
              (List.map
                 (fun (ci, bl) ->
                   let dict_pass =
                     match Cstore.dict cs ci with
                     | Some d ->
                       Some
                         (Array.init (Dict.size d) (fun code ->
                              Bloom.mem bl (Value.Str (Dict.get d code))))
                     | None -> None
                   in
                   { bf_col = ci; bf_bloom = bl; bf_dict_pass = dict_pass })
                 extra);
          grouping;
          kernels = Array.of_list kernels;
          scratch_len = Cstore.max_block_length cs;
        }
  end

(* ---- per-evaluation scratch ---- *)

(* One kernel's per-group accumulators, grown as groups appear.  [mode]
   tracks the numeric representation (0 = no non-null input yet, 1 = int in
   [isum], 2 = float in [fsum]) so SUM/AVG reproduce [Value.add]'s
   int-until-first-float left fold and MIN/MAX reproduce [compare_sql]. *)
type kscratch = {
  mutable cnt : int array;
  mutable mode : int array;
  mutable isum : int array;
  mutable fsum : float array;
}

let kscratch_make n =
  { cnt = Array.make n 0; mode = Array.make n 0; isum = Array.make n 0;
    fsum = Array.make n 0. }

let kscratch_ensure ks n =
  let cap = Array.length ks.cnt in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let grow_i a =
      let b = Array.make cap' 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    ks.cnt <- grow_i ks.cnt;
    ks.mode <- grow_i ks.mode;
    ks.isum <- grow_i ks.isum;
    let f = Array.make cap' 0. in
    Array.blit ks.fsum 0 f 0 cap;
    ks.fsum <- f
  end

let step_sum_int ks g v =
  match ks.mode.(g) with
  | 0 ->
    ks.mode.(g) <- 1;
    ks.isum.(g) <- v
  | 1 ->
    (* Same-sign operands whose sum flips sign overflowed: promote to float,
       exactly [Value.add]'s rule, so SUM/AVG past max_int match the row
       path instead of wrapping. *)
    let s = ks.isum.(g) + v in
    if (ks.isum.(g) >= 0) = (v >= 0) && (s >= 0) <> (ks.isum.(g) >= 0) then begin
      ks.mode.(g) <- 2;
      ks.fsum.(g) <- float_of_int ks.isum.(g) +. float_of_int v
    end
    else ks.isum.(g) <- s
  | _ -> ks.fsum.(g) <- ks.fsum.(g) +. float_of_int v

let step_sum_float ks g v =
  match ks.mode.(g) with
  | 0 ->
    ks.mode.(g) <- 2;
    ks.fsum.(g) <- v
  | 1 ->
    ks.mode.(g) <- 2;
    ks.fsum.(g) <- float_of_int ks.isum.(g) +. v
  | _ -> ks.fsum.(g) <- ks.fsum.(g) +. v

(* Strictly-better keeps the earlier value (and its representation) on
   ties, like Agg's [better]. *)
let step_minmax_int smaller ks g v =
  match ks.mode.(g) with
  | 0 ->
    ks.mode.(g) <- 1;
    ks.isum.(g) <- v
  | 1 ->
    let c = compare v ks.isum.(g) in
    if (if smaller then c < 0 else c > 0) then ks.isum.(g) <- v
  | _ ->
    let c = compare (float_of_int v) ks.fsum.(g) in
    if (if smaller then c < 0 else c > 0) then begin
      ks.mode.(g) <- 1;
      ks.isum.(g) <- v
    end

let step_minmax_float smaller ks g v =
  match ks.mode.(g) with
  | 0 ->
    ks.mode.(g) <- 2;
    ks.fsum.(g) <- v
  | 1 ->
    let c = compare v (float_of_int ks.isum.(g)) in
    if (if smaller then c < 0 else c > 0) then begin
      ks.mode.(g) <- 2;
      ks.fsum.(g) <- v
    end
  | _ ->
    let c = compare v ks.fsum.(g) in
    if (if smaller then c < 0 else c > 0) then ks.fsum.(g) <- v

(* Iterate (group, value) over the selection for a numeric column; null
   rows are skipped.  The build check guarantees int or float blocks;
   anything else aborts the vectorized path (see [Fallback]). *)
let iter_num (blk : Cstore.block) ci sel gids n ~fi ~ff =
  match blk.Cstore.cols.(ci) with
  | Cstore.C_int (a, None) ->
    for k = 0 to n - 1 do
      fi gids.(k) a.(sel.(k))
    done
  | Cstore.C_int (a, Some bm) ->
    for k = 0 to n - 1 do
      let i = sel.(k) in
      if not (Bitset.get bm i) then fi gids.(k) a.(i)
    done
  | Cstore.C_float (a, None) ->
    for k = 0 to n - 1 do
      ff gids.(k) a.(sel.(k))
    done
  | Cstore.C_float (a, Some bm) ->
    for k = 0 to n - 1 do
      let i = sel.(k) in
      if not (Bitset.get bm i) then ff gids.(k) a.(i)
    done
  | _ -> raise (Fallback "aggregate input block is not numeric")

let null_test (vec : Cstore.cvec) : int -> bool =
  match vec with
  | Cstore.C_int (_, Some bm)
  | Cstore.C_float (_, Some bm)
  | Cstore.C_dict (_, Some bm)
  | Cstore.C_bool (_, Some bm) ->
    fun i -> Bitset.get bm i
  | Cstore.C_mixed a -> fun i -> Value.is_null a.(i)
  | _ -> fun _ -> false

(* ---- evaluation ---- *)

let eval t b =
  let nb = Cstore.nblocks t.cs in
  if not (Array.for_all (fun g -> g b) t.gates) then
    (* A false binding-only conjunct empties Q_R(b): every block is skipped
       without a zone-map test. *)
    { groups = []; blocks_skipped = nb; blocks_scanned = 0 }
  else begin
    let np = Array.length t.probes in
    let consts = Array.map (fun p -> p.Compile.pp_val b) t.probes in
    let sel = Array.make (max 1 t.scratch_len) 0 in
    let gids = Array.make (max 1 t.scratch_len) 0 in
    let nkern = Array.length t.kernels in
    let kss = Array.init nkern (fun _ -> kscratch_make 8) in
    let ngroups = ref 0 in
    let dict_gid =
      match t.grouping with
      | G_dict (_, d) -> Array.make (Dict.size d + 1) (-1)
      | _ -> [||]
    in
    let dict_slots = ref [] in
    let gen_tbl : int Row.Tbl.t = Row.Tbl.create 16 in
    let gen_keys = ref [] in
    let skipped = ref 0 and scanned = ref 0 in
    (* Zone maps come from resident metadata ([Cstore.block_zmaps]) so a
       refuted block of a paged store is skipped without a fetch — the
       whole point of NLJP data skipping over the disk tier. *)
    for bi = 0 to nb - 1 do
      let zm = Cstore.block_zmaps t.cs bi in
      let refuted = ref false in
      for pi = 0 to np - 1 do
        if
          (not !refuted)
          && not
               (Zmap.may_match
                  zm.(t.probes.(pi).Compile.pp_col)
                  t.zops.(pi) consts.(pi))
        then refuted := true
      done;
      Array.iter
        (fun bf ->
          if
            (not !refuted)
            && not (Bloom.range_may_match bf.bf_bloom zm.(bf.bf_col))
          then refuted := true)
        t.extra;
      if !refuted then incr skipped
      else begin
        incr scanned;
        let blk = Cstore.block t.cs bi in
          let n = ref (Cstore.sel_all blk sel) in
          for pi = 0 to np - 1 do
            if !n > 0 then begin
              let p = t.probes.(pi) in
              n :=
                Cstore.sel_refine sel !n
                  (row_test t.cs blk p.Compile.pp_col p.Compile.pp_op consts.(pi))
            end
          done;
          Array.iter
            (fun bf ->
              if !n > 0 then begin
                let test =
                  match bf.bf_dict_pass, blk.Cstore.cols.(bf.bf_col) with
                  | Some pass, Cstore.C_dict (codes, bm) ->
                    (match bm with
                     | None -> fun i -> pass.(codes.(i))
                     | Some bm ->
                       fun i -> (not (Bitset.get bm i)) && pass.(codes.(i)))
                  | _ ->
                    fun i -> Bloom.mem bf.bf_bloom (Cstore.value_at t.cs blk bf.bf_col i)
                in
                n := Cstore.sel_refine sel !n test
              end)
            t.extra;
          let n = !n in
          if n > 0 then begin
            (match t.grouping with
             | G_single ->
               (* [gids] is never written, so it stays all-zero. *)
               if !ngroups = 0 then ngroups := 1
             | G_dict (g, _) ->
               (match blk.Cstore.cols.(g) with
                | Cstore.C_dict (codes, bm) ->
                  let is_null =
                    match bm with
                    | Some bm -> fun i -> Bitset.get bm i
                    | None -> fun _ -> false
                  in
                  for k = 0 to n - 1 do
                    let i = sel.(k) in
                    let slot = if is_null i then 0 else codes.(i) + 1 in
                    let gid = dict_gid.(slot) in
                    if gid >= 0 then gids.(k) <- gid
                    else begin
                      let gid = !ngroups in
                      incr ngroups;
                      dict_gid.(slot) <- gid;
                      dict_slots := slot :: !dict_slots;
                      gids.(k) <- gid
                    end
                  done
                | _ -> raise (Fallback "grouping block is not dictionary-coded"))
             | G_generic cols ->
               let nc = Array.length cols in
               for k = 0 to n - 1 do
                 let i = sel.(k) in
                 let key = Array.init nc (fun j -> Cstore.value_at t.cs blk cols.(j) i) in
                 match Row.Tbl.find_opt gen_tbl key with
                 | Some gid -> gids.(k) <- gid
                 | None ->
                   let gid = !ngroups in
                   incr ngroups;
                   Row.Tbl.add gen_tbl key gid;
                   gen_keys := key :: !gen_keys;
                   gids.(k) <- gid
               done);
            let ng = !ngroups in
            for ki = 0 to nkern - 1 do
              let ks = kss.(ki) in
              kscratch_ensure ks ng;
              match t.kernels.(ki) with
              | K_count_star ->
                for k = 0 to n - 1 do
                  let g = gids.(k) in
                  ks.cnt.(g) <- ks.cnt.(g) + 1
                done
              | K_count ci ->
                let isnull = null_test blk.Cstore.cols.(ci) in
                for k = 0 to n - 1 do
                  if not (isnull sel.(k)) then begin
                    let g = gids.(k) in
                    ks.cnt.(g) <- ks.cnt.(g) + 1
                  end
                done
              | K_sum ci ->
                iter_num blk ci sel gids n ~fi:(step_sum_int ks)
                  ~ff:(step_sum_float ks)
              | K_avg ci ->
                iter_num blk ci sel gids n
                  ~fi:(fun g v ->
                    ks.cnt.(g) <- ks.cnt.(g) + 1;
                    step_sum_int ks g v)
                  ~ff:(fun g v ->
                    ks.cnt.(g) <- ks.cnt.(g) + 1;
                    step_sum_float ks g v)
              | K_min ci ->
                iter_num blk ci sel gids n ~fi:(step_minmax_int true ks)
                  ~ff:(step_minmax_float true ks)
              | K_max ci ->
                iter_num blk ci sel gids n ~fi:(step_minmax_int false ks)
                  ~ff:(step_minmax_float false ks)
            done
          end
        end
    done;
    let ng = !ngroups in
    let keys =
      match t.grouping with
      | G_single -> Array.init ng (fun _ : Row.t -> [||])
      | G_dict (_, d) ->
        Array.of_list
          (List.rev_map
             (fun slot ->
               if slot = 0 then [| Value.Null |]
               else [| Value.Str (Dict.get d (slot - 1)) |])
             !dict_slots)
      | G_generic _ -> Array.of_list (List.rev !gen_keys)
    in
    let state_of kind ks g =
      let num () =
        match ks.mode.(g) with
        | 0 -> Value.Null
        | 1 -> Value.Int ks.isum.(g)
        | _ -> Value.Float ks.fsum.(g)
      in
      match kind with
      | K_count_star | K_count _ -> Agg.count_state ks.cnt.(g)
      | K_sum _ -> Agg.sum_state (num ())
      | K_min _ -> Agg.min_state (num ())
      | K_max _ -> Agg.max_state (num ())
      | K_avg _ -> Agg.avg_state ~sum:(num ()) ~n:ks.cnt.(g)
    in
    let groups =
      List.init ng (fun g ->
          ( keys.(g),
            List.init nkern (fun ki -> state_of t.kernels.(ki) kss.(ki) g) ))
    in
    { groups; blocks_skipped = !skipped; blocks_scanned = !scanned }
  end
