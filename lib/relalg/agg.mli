(** SQL aggregate functions with their algebraic decomposition.

    Following Gray et al. (the paper's [10]), an aggregate is {e algebraic}
    when a bounded-size partial state supports [step] on subsets and [merge]
    across subsets — SUM/MIN/MAX/COUNT/AVG are; COUNT(DISTINCT) is not (its
    partial state is the unbounded set of distinct values, which we still
    implement so the baseline can evaluate it, but memoization refuses to
    combine it across partial groups unless the group key is a key). *)

type func =
  | Count_star
  | Count of Expr.t  (** counts non-null values *)
  | Count_distinct of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type state

(** Compiled stepper bound to an input schema. *)
type compiled = {
  fresh : unit -> state;
  step : state -> Row.t -> unit;
  merge : state -> state -> unit;  (** folds the second state into the first *)
  final : state -> Value.t;
}

val compile : Schema.t -> func -> compiled

(** Raw state constructors for vectorized aggregation kernels that
    accumulate in unboxed scratch and box once per evaluation.  Each
    constructor builds the state of the corresponding function(s) —
    [count_state] for "COUNT(*)"/COUNT(e), [sum_state] for SUM (the running
    [Value.t] sum, [Null] when no non-null input was seen), [min_state]/
    [max_state] for MIN/MAX, [avg_state] for AVG — interoperable with
    [compile]'s [merge]/[final] for that function. *)
val count_state : int -> state

val sum_state : Value.t -> state
val min_state : Value.t -> state
val max_state : Value.t -> state
val avg_state : sum:Value.t -> n:int -> state
val is_algebraic : func -> bool
val input_expr : func -> Expr.t option
val map_expr : (Expr.t -> Expr.t) -> func -> func
val to_string : func -> string
val equal : func -> func -> bool

(** Approximate in-memory size of a state, for cache accounting (Fig 3). *)
val state_bytes : state -> int

(** The intermediate (f^i) and combining (f^o) halves of an algebraic
    aggregate, as used by the static memoization rewrite (Listing 8) and by
    NLJP post-processing when [G_L] is not a key.

    [decompose f ~name] returns [`Algebraic (partials, outers, final)]:
    [partials] are aggregates computed per (binding, G_R) sub-group and
    stored under the given column names; [outers] re-aggregate those columns
    across sub-groups of the same final LR-group; [final] is a scalar
    expression over the outer columns producing the value of [f].  AVG
    becomes partial (SUM, COUNT) with final SUM(sums)/SUM(counts). *)
val decompose :
  func ->
  name:string ->
  [ `Algebraic of (string * func) list * (string * func) list * Expr.t
  | `Holistic ]
