(** Re-export of {!Column.Schema} (see [lib/column]): ordered lists of
    (possibly qualified) column names with SQL-style resolution. *)

include module type of struct
  include Column.Schema
end
