(** Physical query plans.

    The baseline executor interprets these trees directly; the iceberg
    optimizer's rewrites also bottom out in plans (plus the NLJP operator in
    [lib/core], which composes plans for its component queries). *)

type bound = Expr.t * [ `Strict | `Inclusive ]

type t =
  | Scan of { table : string; alias : string option; filter : Expr.t option }
      (** base-table scan; the alias requalifies columns *)
  | Values of { name : string; rel : Relation.t }
      (** an embedded materialized relation (CTE result, cache contents) *)
  | Filter of Expr.t * t
  | Project of (Expr.t * Schema.col) list * t
  | Nl_join of { pred : Expr.t; left : t; right : t }
  | Hash_join of {
      keys : (Expr.t * Expr.t) list;  (** (left expr, right expr) pairs *)
      residual : Expr.t;
      left : t;
      right : t;
    }
  | Merge_join of {
      keys : (Expr.t * Expr.t) list;
      residual : Expr.t;
      left : t;
      right : t;
    }  (** sort-merge alternative to {!Hash_join} (same semantics) *)
  | Index_nl_join of {
      pred : Expr.t;
      left : t;
      table : string;
      alias : string option;
      key_col : string;  (** first column of the sorted index to probe *)
      lo : bound option;  (** bound exprs evaluated over the left row *)
      hi : bound option;
    }
  | Group of {
      group_cols : (Expr.t * Schema.col) list;
      aggs : (Agg.func * Schema.col) list;
      input : t;
    }
  | Distinct of t
  | Order_by of (Expr.t * [ `Asc | `Desc ]) list * t
  | Limit of int * t
  | Semijoin of { keys : Expr.t list; sub : t; input : t }
      (** IN (subquery): keep input rows whose key tuple appears in [sub] *)
  | Rename of string * t
      (** export a subquery result under a single alias *)

(** The output schema of a plan, given the catalog (no execution). *)
val schema_of : Catalog.t -> t -> Schema.t

(** EXPLAIN-style indented tree, in the spirit of Appendix E. *)
val explain : t -> string
