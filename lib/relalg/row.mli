(** Re-export of {!Column.Row} (see [lib/column]); rows are
    immutable-by-convention arrays of values. *)

include module type of struct
  include Column.Row
end
