include Column.Value
