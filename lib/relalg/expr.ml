type binop = Add | Sub | Mul | Div
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type row_set = unit Row.Tbl.t

type t =
  | Const of Value.t
  | Col of Schema.col
  | Binop of binop * t * t
  | Neg of t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | In_set of t list * row_set

let row_set_of rows =
  let tbl = Row.Tbl.create (max 16 (List.length rows)) in
  List.iter (fun r -> Row.Tbl.replace tbl r ()) rows;
  tbl

let row_set_cardinality = Row.Tbl.length
let row_set_mem = Row.Tbl.mem

let tt = Const (Value.Bool true)

let col ?q name = Col (Schema.col ?q name)
let int i = Const (Value.Int i)

let conj = function
  | [] -> tt
  | e :: es -> List.fold_left (fun acc e -> And (acc, e)) e es

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | Const (Value.Bool true) -> []
  | e -> [ e ]

let columns e =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go = function
    | Const _ -> ()
    | Col c ->
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        out := c :: !out
      end
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Neg a | Not a -> go a
    | In_set (es, _) -> List.iter go es
  in
  go e;
  List.rev !out

let rec bind schema row e =
  match e with
  | Const _ -> e
  | Col c ->
    (try Const row.(Schema.index_of_col schema c) with
     | Schema.Unknown_column _ -> e)
  | Binop (op, a, b) -> Binop (op, bind schema row a, bind schema row b)
  | Neg a -> Neg (bind schema row a)
  | Cmp (op, a, b) -> Cmp (op, bind schema row a, bind schema row b)
  | And (a, b) -> And (bind schema row a, bind schema row b)
  | Or (a, b) -> Or (bind schema row a, bind schema row b)
  | Not a -> Not (bind schema row a)
  | In_set (es, s) -> In_set (List.map (bind schema row) es, s)

let rec requalify f e =
  match e with
  | Const _ -> e
  | Col c -> Col { c with Schema.qualifier = f c.Schema.qualifier }
  | Binop (op, a, b) -> Binop (op, requalify f a, requalify f b)
  | Neg a -> Neg (requalify f a)
  | Cmp (op, a, b) -> Cmp (op, requalify f a, requalify f b)
  | And (a, b) -> And (requalify f a, requalify f b)
  | Or (a, b) -> Or (requalify f a, requalify f b)
  | Not a -> Not (requalify f a)
  | In_set (es, s) -> In_set (List.map (requalify f) es, s)

let rec map_cols f e =
  match e with
  | Const _ -> e
  | Col c -> Col (f c)
  | Binop (op, a, b) -> Binop (op, map_cols f a, map_cols f b)
  | Neg a -> Neg (map_cols f a)
  | Cmp (op, a, b) -> Cmp (op, map_cols f a, map_cols f b)
  | And (a, b) -> And (map_cols f a, map_cols f b)
  | Or (a, b) -> Or (map_cols f a, map_cols f b)
  | Not a -> Not (map_cols f a)
  | In_set (es, s) -> In_set (List.map (map_cols f) es, s)

let canonicalize schema e =
  map_cols (fun c -> Schema.nth schema (Schema.index_of_col schema c)) e

let apply_cmp op a b =
  (* NaN compares like NULL: every predicate involving it is false (the
     compiled paths get the same rule from [Value.compare_sql_code]). *)
  if Value.is_nan a || Value.is_nan b then Value.Bool false
  else
  match Value.compare_sql a b with
  | None -> Value.Bool false
  | Some c ->
    Value.Bool
      (match op with
       | Eq -> c = 0
       | Ne -> c <> 0
       | Lt -> c < 0
       | Le -> c <= 0
       | Gt -> c > 0
       | Ge -> c >= 0)

let apply_binop op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b

let rec eval schema row e =
  match e with
  | Const v -> v
  | Col c -> row.(Schema.index_of_col schema c)
  | Binop (op, a, b) -> apply_binop op (eval schema row a) (eval schema row b)
  | Neg a -> Value.neg (eval schema row a)
  | Cmp (op, a, b) -> apply_cmp op (eval schema row a) (eval schema row b)
  | And (a, b) -> Value.Bool (eval_bool schema row a && eval_bool schema row b)
  | Or (a, b) -> Value.Bool (eval_bool schema row a || eval_bool schema row b)
  | Not a -> Value.Bool (not (eval_bool schema row a))
  | In_set (es, set) ->
    let key = Array.of_list (List.map (eval schema row) es) in
    Value.Bool (Row.Tbl.mem set key)

and eval_bool schema row e = Value.to_bool (eval schema row e)

(* Compilation resolves every column reference to an index once, returning a
   closure that only does array reads at run time. *)
let rec compile schema e =
  match e with
  | Const v -> fun _ -> v
  | Col c ->
    let i = Schema.index_of_col schema c in
    fun row -> row.(i)
  | Binop (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> apply_binop op (fa row) (fb row)
  | Neg a ->
    let fa = compile schema a in
    fun row -> Value.neg (fa row)
  | Cmp (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> apply_cmp op (fa row) (fb row)
  | And (a, b) ->
    let fa = compile_bool' schema a and fb = compile_bool' schema b in
    fun row -> Value.Bool (fa row && fb row)
  | Or (a, b) ->
    let fa = compile_bool' schema a and fb = compile_bool' schema b in
    fun row -> Value.Bool (fa row || fb row)
  | Not a ->
    let fa = compile_bool' schema a in
    fun row -> Value.Bool (not (fa row))
  | In_set (es, set) ->
    let fs = List.map (compile schema) es in
    fun row ->
      let key = Array.of_list (List.map (fun f -> f row) fs) in
      Value.Bool (Row.Tbl.mem set key)

and compile_bool' schema e =
  (* Direct boolean compilation: predicates never box intermediate
     [Value.Bool]s on the hot path. *)
  match e with
  | Const (Value.Bool b) -> fun _ -> b
  | Cmp (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    let test =
      match op with
      | Eq -> fun c -> c = 0
      | Ne -> fun c -> c <> 0 && c <> min_int
      | Lt -> fun c -> c < 0 && c <> min_int
      | Le -> fun c -> c <= 0 && c <> min_int
      | Gt -> fun c -> c > 0
      | Ge -> fun c -> c >= 0
    in
    fun row -> test (Value.compare_sql_code (fa row) (fb row))
  | And (a, b) ->
    let fa = compile_bool' schema a and fb = compile_bool' schema b in
    fun row -> fa row && fb row
  | Or (a, b) ->
    let fa = compile_bool' schema a and fb = compile_bool' schema b in
    fun row -> fa row || fb row
  | Not a ->
    let fa = compile_bool' schema a in
    fun row -> not (fa row)
  | In_set (es, set) ->
    let fs = List.map (compile schema) es in
    fun row ->
      let key = Array.of_list (List.map (fun f -> f row) fs) in
      Row.Tbl.mem set key
  | Const _ | Col _ | Binop _ | Neg _ ->
    let f = compile schema e in
    fun row -> Value.to_bool (f row)

let compile_bool = compile_bool'

let compile_join_bool left right e =
  let la = Schema.arity left in
  let joined = Schema.append left right in
  let f = compile_bool joined e in
  let scratch = Array.make (la + Schema.arity right) Value.Null in
  fun lrow rrow ->
    Array.blit lrow 0 scratch 0 la;
    Array.blit rrow 0 scratch la (Array.length rrow);
    f scratch

let flip_cmp = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let binop_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec to_string = function
  | Const v -> Value.to_string v
  | Col c -> Schema.col_to_string c
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (binop_to_string op) (to_string b)
  | Neg a -> Printf.sprintf "(-%s)" (to_string a)
  | Cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (to_string a) (cmp_to_string op) (to_string b)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "NOT (%s)" (to_string a)
  | In_set (es, set) ->
    Printf.sprintf "(%s) IN <set:%d>"
      (String.concat ", " (List.map to_string es))
      (Row.Tbl.length set)

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal_total x y
  | Col x, Col y -> x = y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Neg x, Neg y | Not x, Not y -> equal x y
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | In_set (e1, s1), In_set (e2, s2) ->
    s1 == s2 && List.length e1 = List.length e2 && List.for_all2 equal e1 e2
  | _ -> false
