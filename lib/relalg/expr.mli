(** Scalar and boolean row expressions.

    One unified expression type covers arithmetic ([SELECT] expressions,
    aggregate inputs) and predicates ([WHERE]/[HAVING] conditions).
    Comparisons involving [Null] evaluate to false (the paper's queries never
    exercise NULL semantics; see DESIGN.md). *)

type binop = Add | Sub | Mul | Div
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** A materialized set of rows for [IN (subquery)] predicates. *)
type row_set

type t =
  | Const of Value.t
  | Col of Schema.col
  | Binop of binop * t * t
  | Neg of t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | In_set of t list * row_set  (** tuple-IN against a materialized set *)

val row_set_of : Row.t list -> row_set
val row_set_cardinality : row_set -> int
val row_set_mem : row_set -> Row.t -> bool

val tt : t  (** the always-true predicate *)

val col : ?q:string -> string -> t
val int : int -> t
val conj : t list -> t
val conjuncts : t -> t list

(** Columns referenced by the expression, in first-occurrence order. *)
val columns : t -> Schema.col list

(** Replace column references that resolve in [schema] by the constant from
    [row]; used to instantiate the NLJP inner query Q_R(b) with a binding. *)
val bind : Schema.t -> Row.t -> t -> t

(** Rename column qualifiers, e.g. retargeting a predicate written against
    alias [L] to alias [S1]. *)
val requalify : (string option -> string option) -> t -> t

(** Rewrite every column reference. *)
val map_cols : (Schema.col -> Schema.col) -> t -> t

(** Resolve every column reference against [schema] to its canonical
    (qualified) form. *)
val canonicalize : Schema.t -> t -> t

val eval : Schema.t -> Row.t -> t -> Value.t
val eval_bool : Schema.t -> Row.t -> t -> bool

(** Resolve all columns once against [schema], returning a fast closure. *)
val compile : Schema.t -> t -> Row.t -> Value.t

val compile_bool : Schema.t -> t -> Row.t -> bool

(** Predicate over the concatenation of a left row and a right row, without
    materializing the concatenated row (hot path of nested-loop joins). *)
val compile_join_bool : Schema.t -> Schema.t -> t -> Row.t -> Row.t -> bool

val flip_cmp : cmp -> cmp
val negate_cmp : cmp -> cmp
val to_string : t -> string
val equal : t -> t -> bool
