(** Duplicate-preserving relational operators (π, σ, ⋈, γ, …).

    These are the building blocks both of the baseline executor (the
    "PostgreSQL" stand-in) and of the rewritten plans produced by the
    iceberg optimizer. *)

val select : Expr.t -> Relation.t -> Relation.t

(** [project outs rel]: each output column is an expression evaluated per
    row, named by the given column (qualifier preserved). *)
val project : (Expr.t * Schema.col) list -> Relation.t -> Relation.t

(** θ-join by nested loop; [pred] is evaluated over the concatenated row. *)
val nl_join : pred:Expr.t -> Relation.t -> Relation.t -> Relation.t

(** Equi-join by hashing: [left_keys] and [right_keys] are positionally
    paired; [residual] (over the concatenated schema) filters matches. *)
val hash_join :
  left_keys:Expr.t list ->
  right_keys:Expr.t list ->
  residual:Expr.t ->
  Relation.t ->
  Relation.t ->
  Relation.t

(** Equi-join by sorting both inputs on the key expressions and merging;
    same contract as {!hash_join}.  Slower here (no spill to disk makes
    hashing strictly better in memory) but kept as the classic alternative
    join method the baseline systems switch to without indexes. *)
val merge_join :
  left_keys:Expr.t list ->
  right_keys:Expr.t list ->
  residual:Expr.t ->
  Relation.t ->
  Relation.t ->
  Relation.t

(** Index nested-loop join: probe the right side through a prebuilt sorted
    index using [right_bound], a function computing per-outer-row bounds on
    the index's first key column; [pred] still filters exactly. *)
val index_nl_join :
  pred:Expr.t ->
  index:Index.Sorted.t ->
  right_schema:Schema.t ->
  right_bound:
    (Row.t ->
    (Value.t * [ `Strict | `Inclusive ]) option
    * (Value.t * [ `Strict | `Inclusive ]) option) ->
  Relation.t ->
  Relation.t

(** Grouping with aggregation.  Output schema is the group columns followed
    by the aggregate columns.  With an empty [group_cols] the result is the
    single global group (even over an empty input, matching SQL). *)
val group_by :
  group_cols:(Expr.t * Schema.col) list ->
  aggs:(Agg.func * Schema.col) list ->
  Relation.t ->
  Relation.t

val distinct : Relation.t -> Relation.t
val order_by : (Expr.t * [ `Asc | `Desc ]) list -> Relation.t -> Relation.t
val limit : int -> Relation.t -> Relation.t

(** [semijoin keys sub rel] keeps rows of [rel] whose [keys] tuple appears in
    [sub] (which must have matching arity) — implements [IN (subquery)]. *)
val semijoin : Expr.t list -> Relation.t -> Relation.t -> Relation.t

val union_all : Relation.t -> Relation.t -> Relation.t
val cross : Relation.t -> Relation.t -> Relation.t
