(** Minimal CSV import/export (comma-separated, first line is the header,
    double-quote escaping) so the CLI and examples can load real data. *)

val load : string -> Relation.t
val save : string -> Relation.t -> unit
val parse_string : string -> Relation.t
val to_csv_string : Relation.t -> string
