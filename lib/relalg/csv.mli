(** Minimal CSV import/export (comma-separated, first line is the header,
    double-quote escaping) so the CLI and examples can load real data.

    Empty fields parse to SQL NULL; columns mixing Int and Float fields are
    promoted to Float consistently in both layouts.  [?layout] selects the
    physical layout of the loaded relation (default [`Row]); [`Column]
    loads into chunked columnar storage with zone maps. *)

val load : ?layout:[ `Row | `Column ] -> string -> Relation.t
val save : string -> Relation.t -> unit
val parse_string : ?layout:[ `Row | `Column ] -> string -> Relation.t
val to_csv_string : Relation.t -> string
