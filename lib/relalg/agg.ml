type func =
  | Count_star
  | Count of Expr.t
  | Count_distinct of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type state =
  | Count_st of { mutable n : int }
  | Sum_st of { mutable acc : Value.t }
  | Minmax_st of { mutable acc : Value.t; smaller : bool }
  | Avg_st of { mutable sum : Value.t; mutable n : int }
  | Distinct_st of unit Row.Tbl.t

type compiled = {
  fresh : unit -> state;
  step : state -> Row.t -> unit;
  merge : state -> state -> unit;
  final : state -> Value.t;
}

let bad () = invalid_arg "Agg: state does not match function"

let compile schema func =
  match func with
  | Count_star ->
    {
      fresh = (fun () -> Count_st { n = 0 });
      step = (fun st _ -> match st with Count_st s -> s.n <- s.n + 1 | _ -> bad ());
      merge =
        (fun a b ->
          match a, b with Count_st x, Count_st y -> x.n <- x.n + y.n | _ -> bad ());
      final = (fun st -> match st with Count_st s -> Value.Int s.n | _ -> bad ());
    }
  | Count e ->
    let f = Compile.scalar schema e in
    {
      fresh = (fun () -> Count_st { n = 0 });
      step =
        (fun st row ->
          match st with
          | Count_st s -> if not (Value.is_null (f row)) then s.n <- s.n + 1
          | _ -> bad ());
      merge =
        (fun a b ->
          match a, b with Count_st x, Count_st y -> x.n <- x.n + y.n | _ -> bad ());
      final = (fun st -> match st with Count_st s -> Value.Int s.n | _ -> bad ());
    }
  | Count_distinct e ->
    let f = Compile.scalar schema e in
    {
      fresh = (fun () -> Distinct_st (Row.Tbl.create 16));
      step =
        (fun st row ->
          match st with
          | Distinct_st tbl ->
            let v = f row in
            if not (Value.is_null v) then Row.Tbl.replace tbl [| v |] ()
          | _ -> bad ());
      merge =
        (fun a b ->
          match a, b with
          | Distinct_st x, Distinct_st y -> Row.Tbl.iter (fun k () -> Row.Tbl.replace x k ()) y
          | _ -> bad ());
      final =
        (fun st ->
          match st with Distinct_st tbl -> Value.Int (Row.Tbl.length tbl) | _ -> bad ());
    }
  | Sum e ->
    let f = Compile.scalar schema e in
    {
      fresh = (fun () -> Sum_st { acc = Value.Null });
      step =
        (fun st row ->
          match st with
          | Sum_st s ->
            let v = f row in
            if not (Value.is_null v) then
              s.acc <- (if Value.is_null s.acc then v else Value.add s.acc v)
          | _ -> bad ());
      merge =
        (fun a b ->
          match a, b with
          | Sum_st x, Sum_st y ->
            if not (Value.is_null y.acc) then
              x.acc <- (if Value.is_null x.acc then y.acc else Value.add x.acc y.acc)
          | _ -> bad ());
      final = (fun st -> match st with Sum_st s -> s.acc | _ -> bad ());
    }
  | Min e | Max e ->
    let smaller = (match func with Min _ -> true | _ -> false) in
    let f = Compile.scalar schema e in
    let better a b =
      match Value.compare_sql a b with
      | None -> false
      | Some c -> if smaller then c < 0 else c > 0
    in
    {
      fresh = (fun () -> Minmax_st { acc = Value.Null; smaller });
      step =
        (fun st row ->
          match st with
          | Minmax_st s ->
            let v = f row in
            if not (Value.is_null v) then
              if Value.is_null s.acc || better v s.acc then s.acc <- v
          | _ -> bad ());
      merge =
        (fun a b ->
          match a, b with
          | Minmax_st x, Minmax_st y ->
            if not (Value.is_null y.acc) then
              if Value.is_null x.acc || better y.acc x.acc then x.acc <- y.acc
          | _ -> bad ());
      final = (fun st -> match st with Minmax_st s -> s.acc | _ -> bad ());
    }
  | Avg e ->
    let f = Compile.scalar schema e in
    {
      fresh = (fun () -> Avg_st { sum = Value.Null; n = 0 });
      step =
        (fun st row ->
          match st with
          | Avg_st s ->
            let v = f row in
            if not (Value.is_null v) then begin
              s.sum <- (if Value.is_null s.sum then v else Value.add s.sum v);
              s.n <- s.n + 1
            end
          | _ -> bad ());
      merge =
        (fun a b ->
          match a, b with
          | Avg_st x, Avg_st y ->
            if y.n > 0 then begin
              x.sum <- (if Value.is_null x.sum then y.sum else Value.add x.sum y.sum);
              x.n <- x.n + y.n
            end
          | _ -> bad ());
      final =
        (fun st ->
          match st with
          | Avg_st s ->
            if s.n = 0 then Value.Null
            else Value.Float (Value.to_float s.sum /. float_of_int s.n)
          | _ -> bad ());
    }

(* Raw state constructors for the vectorized kernels (Colprobe): a kernel
   accumulates into unboxed scratch and boxes the result as a state once at
   the end of an evaluation; the states interoperate with [compile]'s
   [merge]/[final] for the matching function. *)
let count_state n = Count_st { n }
let sum_state acc = Sum_st { acc }
let min_state acc = Minmax_st { acc; smaller = true }
let max_state acc = Minmax_st { acc; smaller = false }
let avg_state ~sum ~n = Avg_st { sum; n }

let is_algebraic = function
  | Count_star | Count _ | Sum _ | Min _ | Max _ | Avg _ -> true
  | Count_distinct _ -> false

let input_expr = function
  | Count_star -> None
  | Count e | Count_distinct e | Sum e | Min e | Max e | Avg e -> Some e

let map_expr f = function
  | Count_star -> Count_star
  | Count e -> Count (f e)
  | Count_distinct e -> Count_distinct (f e)
  | Sum e -> Sum (f e)
  | Min e -> Min (f e)
  | Max e -> Max (f e)
  | Avg e -> Avg (f e)

let to_string = function
  | Count_star -> "COUNT(*)"
  | Count e -> Printf.sprintf "COUNT(%s)" (Expr.to_string e)
  | Count_distinct e -> Printf.sprintf "COUNT(DISTINCT %s)" (Expr.to_string e)
  | Sum e -> Printf.sprintf "SUM(%s)" (Expr.to_string e)
  | Min e -> Printf.sprintf "MIN(%s)" (Expr.to_string e)
  | Max e -> Printf.sprintf "MAX(%s)" (Expr.to_string e)
  | Avg e -> Printf.sprintf "AVG(%s)" (Expr.to_string e)

let equal a b =
  match a, b with
  | Count_star, Count_star -> true
  | Count x, Count y
  | Count_distinct x, Count_distinct y
  | Sum x, Sum y
  | Min x, Min y
  | Max x, Max y
  | Avg x, Avg y -> Expr.equal x y
  | _ -> false

let state_bytes = function
  | Count_st _ -> 16
  | Sum_st _ -> 16
  | Minmax_st _ -> 16
  | Avg_st _ -> 24
  | Distinct_st tbl -> 32 + (24 * Row.Tbl.length tbl)

let decompose func ~name =
  let p suffix = name ^ "_" ^ suffix in
  let ucol n = Expr.Col (Schema.col n) in
  match func with
  | Count_star ->
    `Algebraic
      ( [ (p "cnt", Count_star) ],
        [ (p "ocnt", Sum (ucol (p "cnt"))) ],
        ucol (p "ocnt") )
  | Count e ->
    `Algebraic
      ( [ (p "cnt", Count e) ],
        [ (p "ocnt", Sum (ucol (p "cnt"))) ],
        ucol (p "ocnt") )
  | Sum e ->
    `Algebraic
      ( [ (p "sum", Sum e) ],
        [ (p "osum", Sum (ucol (p "sum"))) ],
        ucol (p "osum") )
  | Min e ->
    `Algebraic
      ( [ (p "min", Min e) ],
        [ (p "omin", Min (ucol (p "min"))) ],
        ucol (p "omin") )
  | Max e ->
    `Algebraic
      ( [ (p "max", Max e) ],
        [ (p "omax", Max (ucol (p "max"))) ],
        ucol (p "omax") )
  | Avg e ->
    let final =
      Expr.Binop
        ( Expr.Div,
          Expr.Binop (Expr.Mul, ucol (p "osum"), Expr.Const (Value.Float 1.0)),
          ucol (p "ocnt") )
    in
    `Algebraic
      ( [ (p "sum", Sum e); (p "cnt", Count e) ],
        [ (p "osum", Sum (ucol (p "sum"))); (p "ocnt", Sum (ucol (p "cnt"))) ],
        final )
  | Count_distinct _ -> `Holistic
