let split n arr =
  let len = Array.length arr in
  if len = 0 || n <= 1 then [ arr ]
  else begin
    let n = min n len in
    let base = len / n and extra = len mod n in
    let rec go i start acc =
      if i >= n then List.rev acc
      else begin
        let size = base + if i < extra then 1 else 0 in
        go (i + 1) (start + size) (Array.sub arr start size :: acc)
      end
    in
    go 0 0 []
  end

let run_chunks ~workers rows f =
  let chunks = split workers rows in
  match chunks with
  | [ only ] -> [ f only ]
  | _ ->
    let domains = List.map (fun chunk -> Domain.spawn (fun () -> f chunk)) chunks in
    List.map Domain.join domains
