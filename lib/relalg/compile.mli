(** Staged compilation of expressions into closures — the engine's hot path.

    [Expr.eval] is the reference interpreter: it re-walks the tree and
    re-resolves every column name against the schema for every row.
    [Expr.compile] resolves columns once but still evaluates through generic
    [Value] dispatch.  This module goes further and is what every executor
    hot loop ([Ops], [Exec], [Agg], [Nljp], [Subsume]) routes through:

    - column references become integer offsets resolved at compile time;
    - constant subexpressions are folded once (folding is attempted under
      [Type_error] protection so errors still surface only if the row path
      is actually reached, exactly like the interpreter);
    - comparison codes are resolved at compile time: each [Cmp] node becomes
      a single specialized comparator closure with an unboxed int/int fast
      path and the paper's NULL-comparison semantics baked in;
    - join predicates evaluate directly over the (outer row, inner row) pair
      — no per-probe blit of both rows into a scratch buffer;
    - projections and key builders fill preallocated arrays instead of going
      through intermediate lists.

    All compiled closures are pure (no interior mutable scratch), so one
    compiled expression may be shared across Domains. *)

type scalar = Row.t -> Value.t
type pred = Row.t -> bool

(** Compile a scalar expression against [schema].  Agrees with
    [Expr.eval schema row e] on every row: same value, or a [Value.Type_error]
    raised in the same situations. *)
val scalar : Schema.t -> Expr.t -> scalar

(** Compile a predicate; agrees with [Expr.eval_bool]. *)
val pred : Schema.t -> Expr.t -> pred

(** [join_pred left right e] compiles [e] over the concatenation of a
    left row and a right row without materializing the concatenation:
    columns resolving into [left] read the first argument, the rest read the
    second.  Agrees with [Expr.eval (Schema.append left right)] on the
    concatenated row. *)
val join_pred : Schema.t -> Schema.t -> Expr.t -> Row.t -> Row.t -> bool

(** [row_fn schema es] builds the row [[| e0; e1; … |]] per input row; used
    for hash/merge-join keys, group keys and projections.  All-column lists
    compile to plain index gathers. *)
val row_fn : Schema.t -> Expr.t list -> Row.t -> Row.t

(** Constant folding on its own (exposed for tests): evaluates constant
    subtrees, keeping any that would raise so errors stay at run time. *)
val fold_constants : Expr.t -> Expr.t

(** The comparator a [Cmp] node compiles to: int/int fast path, SQL NULL
    semantics (any comparison against NULL is false).  Exposed for the
    columnar scan kernels. *)
val value_cmp : Expr.cmp -> Value.t -> Value.t -> bool

(** A column-vs-constant comparison usable against a block's zone map. *)
type zone_probe = { zp_col : int; zp_op : Expr.cmp; zp_const : Value.t }

(** Comparison codes translated for {!Column.Zmap.may_match}. *)
val zmap_cmp : Expr.cmp -> Column.Zmap.cmp

(** [zone_probes schema e] collects the column-vs-constant conjuncts of
    [e]'s top-level AND-chain.  Every probe is a necessary condition for
    [e], so refuting one against a block's zone map proves the block holds
    no matching row.  The boolean is true when the probes are exactly [e]
    (nothing was left unconverted). *)
val zone_probes : Schema.t -> Expr.t -> zone_probe list * bool

(** A parameterized probe [r_col op f(binding)]: the comparison constant is
    recomputed per binding by [pp_val], so the same compiled probe skips
    different blocks for different bindings (per-binding data skipping). *)
type param_probe = { pp_col : int; pp_op : Expr.cmp; pp_val : Row.t -> Value.t }

(** [param_probes ~binding ~inner theta] splits [theta]'s top-level
    AND-chain into probes ([inner column] op [binding-only expression]) and
    gates (conjuncts over the binding alone, evaluated once per binding).
    The boolean is true when probes + gates are exactly [theta]; only then
    may a scan evaluate the probes as typed kernels in place of the row
    predicate.  Column names resolve like [join_pred binding inner]. *)
val param_probes :
  binding:Schema.t ->
  inner:Schema.t ->
  Expr.t ->
  param_probe list * (Row.t -> bool) list * bool
