(** Compressed-execution global aggregation (DESIGN.md §13).

    COUNT/SUM/MIN/MAX/AVG over a paged [.sic] store evaluated on the
    encoded block columns: COUNT-star answered from resident block
    lengths, COUNT(c) from run-length null metadata, int kernels folding whole
    run-length segments without expansion (with an overflow guard that
    falls back to per-element replay, preserving [Value.add]'s
    int-until-first-overflow promotion), and float inputs replayed per
    non-null value so rounding stays bit-identical to the row path.

    [try_global] answers [None] — caller falls back to [Ops.group_by]'s
    row path — unless the query is a global aggregate ([group_cols = []])
    over a paged columnar relation whose every aggregate input is a plain
    column of uniform numeric kind (any kind for COUNT).  Handled blocks
    never decode, which is what [sic.blocks_direct] counts. *)

val try_global :
  group_cols:(Expr.t * Schema.col) list ->
  aggs:(Agg.func * Schema.col) list ->
  Relation.t ->
  Relation.t option
