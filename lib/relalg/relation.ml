(* A relation carries its schema plus one or both physical layouts:
   a boxed row array (the original engine substrate) and/or a chunked
   columnar store (Column.Cstore, with per-block zone maps).  Whichever
   layout is missing is materialized lazily from the other and cached;
   [primary] records which layout the relation was built in (it decides
   footprint accounting and which scan path executes).

   The caches are plain mutable fields: forcing happens on the spawning
   domain before work is chunked across Domains (Exec and Nljp force the
   arrays they capture), and a racing double-materialization would only
   waste work, never produce torn data (an [option] update is a single
   word store). *)

type t = {
  schema : Schema.t;
  primary : [ `Row | `Column ];
  mutable rows_q : Row.t array option;
  mutable cols_q : Column.Cstore.t option;
}

let make schema rows =
  { schema; primary = `Row; rows_q = Some rows; cols_q = None }

let of_rows schema rows = make schema (Array.of_list rows)

let of_cstore cs =
  {
    schema = Column.Cstore.schema cs;
    primary = `Column;
    rows_q = None;
    cols_q = Some cs;
  }

let layout t = t.primary

let rows t =
  match t.rows_q with
  | Some r -> r
  | None ->
    let r =
      match t.cols_q with
      | Some cs -> Column.Cstore.to_rows cs
      | None -> [||]
    in
    t.rows_q <- Some r;
    r

let cstore t =
  match t.cols_q with
  | Some cs -> cs
  | None ->
    let cs = Column.Cstore.of_rows t.schema (rows t) in
    t.cols_q <- Some cs;
    cs

let cstore_opt t = t.cols_q

let to_layout layout t =
  if t.primary = layout then t
  else
    match layout with
    | `Row -> make t.schema (rows t)
    | `Column -> of_cstore (Column.Cstore.with_schema t.schema (cstore t))

let cardinality t =
  match t.rows_q, t.cols_q with
  | Some r, _ -> Array.length r
  | None, Some cs -> Column.Cstore.length cs
  | None, None -> 0

let empty schema = make schema [||]

(* O(delta) append.  Column-primary: delta blocks onto the cstore (the row
   cache, if any, is dropped rather than copied).  Row-primary: one
   pointer-copying [Array.append]; a cached cstore is extended with delta
   blocks so it need not be rebuilt. *)
let append t fresh =
  if Array.length fresh = 0 then t
  else
    match t.primary with
    | `Column ->
      let cs = Column.Cstore.append_rows (cstore t) fresh in
      { schema = t.schema; primary = `Column; rows_q = None; cols_q = Some cs }
    | `Row ->
      let rows = Array.append (rows t) fresh in
      let cols_q =
        Option.map (fun cs -> Column.Cstore.append_rows cs fresh) t.cols_q
      in
      { schema = t.schema; primary = `Row; rows_q = Some rows; cols_q }

(* Rows [lo ..] as a relation (the appended delta, given the old length).
   Row-primary slices the array; column-primary decodes only the blocks
   overlapping the suffix. *)
let slice_from t lo =
  let n = cardinality t in
  if lo <= 0 then t
  else if lo >= n then make t.schema [||]
  else
    match t.rows_q with
    | Some r -> make t.schema (Array.sub r lo (n - lo))
    | None ->
      (match t.cols_q with
       | Some cs -> make t.schema (Column.Cstore.rows_from cs lo)
       | None -> make t.schema [||])

(* Change the schema without rebuilding either layout (used by scans to
   requalify a base table under its alias). *)
let with_schema schema t =
  {
    schema;
    primary = t.primary;
    rows_q = t.rows_q;
    cols_q = Option.map (Column.Cstore.with_schema schema) t.cols_q;
  }

let requalify q t = with_schema (Schema.requalify q t.schema) t

let to_string ?(max_rows = 20) t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Schema.to_string t.schema);
  Buffer.add_char b '\n';
  let rows = rows t in
  let n = Array.length rows in
  let shown = min n max_rows in
  for i = 0 to shown - 1 do
    Buffer.add_string b (Row.to_string rows.(i));
    Buffer.add_char b '\n'
  done;
  if n > shown then Buffer.add_string b (Printf.sprintf "... (%d rows total)\n" n);
  Buffer.contents b

let iter f t = Array.iter f (rows t)
let fold f init t = Array.fold_left f init (rows t)

let filter p t =
  make t.schema (Array.of_seq (Seq.filter p (Array.to_seq (rows t))))

let map_rows schema f t = make schema (Array.map f (rows t))

let sort_by cmp t =
  let rows = Array.copy (rows t) in
  Array.sort cmp rows;
  make t.schema rows

let equal_bag a b =
  cardinality a = cardinality b
  && Schema.arity a.schema = Schema.arity b.schema
  &&
  let sa = Array.copy (rows a) and sb = Array.copy (rows b) in
  Array.sort Row.compare sa;
  Array.sort Row.compare sb;
  Array.for_all2 Row.equal sa sb

let sorted t = sort_by Row.compare t

(* Layout-aware footprint: a column-primary relation is accounted as its
   typed blocks plus dictionaries; row form as boxed rows. *)
let approx_bytes t =
  match t.primary, t.cols_q with
  | `Column, Some cs -> Column.Cstore.approx_bytes cs
  | _ ->
    fold
      (fun acc row ->
        acc + 24 + Array.fold_left (fun a v -> a + Value.approx_bytes v) 0 row)
      0 t
