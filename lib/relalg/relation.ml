type t = { schema : Schema.t; rows : Row.t array }

let make schema rows = { schema; rows }
let of_rows schema rows = { schema; rows = Array.of_list rows }
let cardinality t = Array.length t.rows
let empty schema = { schema; rows = [||] }

let to_string ?(max_rows = 20) t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Schema.to_string t.schema);
  Buffer.add_char b '\n';
  let n = Array.length t.rows in
  let shown = min n max_rows in
  for i = 0 to shown - 1 do
    Buffer.add_string b (Row.to_string t.rows.(i));
    Buffer.add_char b '\n'
  done;
  if n > shown then Buffer.add_string b (Printf.sprintf "... (%d rows total)\n" n);
  Buffer.contents b

let iter f t = Array.iter f t.rows
let fold f init t = Array.fold_left f init t.rows

let filter p t =
  { t with rows = Array.of_seq (Seq.filter p (Array.to_seq t.rows)) }

let map_rows schema f t = { schema; rows = Array.map f t.rows }

let sort_by cmp t =
  let rows = Array.copy t.rows in
  Array.sort cmp rows;
  { t with rows }

let equal_bag a b =
  cardinality a = cardinality b
  && Schema.arity a.schema = Schema.arity b.schema
  &&
  let sa = Array.copy a.rows and sb = Array.copy b.rows in
  Array.sort Row.compare sa;
  Array.sort Row.compare sb;
  Array.for_all2 Row.equal sa sb

let sorted t = sort_by Row.compare t

let value_bytes = function
  | Value.Null -> 8
  | Value.Int _ -> 8
  | Value.Float _ -> 8
  | Value.Bool _ -> 1
  | Value.Str s -> 16 + String.length s

let approx_bytes t =
  fold (fun acc row -> acc + 24 + Array.fold_left (fun a v -> a + value_bytes v) 0 row) 0 t
