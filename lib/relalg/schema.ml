include Column.Schema
