let save path rel = Column.Blockfile.save path (Relation.cstore rel)

let save_rows ?block_size path schema rows =
  Column.Blockfile.save_rows ?block_size path schema rows

let load ?(mode = `Resident) path =
  match mode with
  | `Resident -> Relation.of_cstore (Column.Blockfile.load_resident path)
  | `Paged -> Relation.of_cstore (Column.Blockfile.open_paged path)
