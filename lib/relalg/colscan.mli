(** Block-skipping selection over columnar relations.

    For a column-primary relation, [select] tests the predicate's
    column-vs-constant conjuncts against each block's zone map and skips
    refuted blocks wholesale; surviving blocks are scanned with typed
    kernels when the probes cover the predicate, or through the compiled
    row predicate otherwise.  Results agree row-for-row (and in order)
    with [Ops.select] on the row layout. *)

(** [None] unless the relation is column-primary. *)
val select : Expr.t -> Relation.t -> Relation.t option

(** Zero the block counters — the obs metrics ["colscan.blocks_skipped"] /
    ["colscan.blocks_scanned"] (Runner does this per query). *)
val reset_counters : unit -> unit

(** [(skipped, scanned)] blocks since the last reset; maintained in
    per-domain metric cells so parallel scans report correctly. *)
val counters : unit -> int * int
