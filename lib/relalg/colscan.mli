(** Block-skipping selection over columnar relations.

    For a column-primary relation, [select] tests the predicate's
    column-vs-constant conjuncts against each block's zone map and skips
    refuted blocks wholesale; surviving blocks are scanned with typed
    kernels when the probes cover the predicate, or through the compiled
    row predicate otherwise.  Results agree row-for-row (and in order)
    with [Ops.select] on the row layout. *)

(** [None] unless the relation is column-primary. *)
val select : Expr.t -> Relation.t -> Relation.t option

(** [select_bloom ~filters pred rel]: the scan with transferred Bloom
    filters composed in (predicate transfer, DESIGN.md §11).  On the column
    layout, a block is skipped when a σ zone probe refutes it {e or} a
    filter's observed range misses the block's zone map; surviving rows must
    pass σ and every filter's membership test (dictionary-coded columns
    probe a per-dictionary pass table computed once per scan).  On the row
    layout the same tests run row-at-a-time.  Filters name unqualified
    columns of [rel]; unresolvable names are ignored (a filter is only ever
    a performance hint).  Bloom work is reported under the
    ["transfer.blocks_skipped"] / ["transfer.rows_probed"] /
    ["transfer.rows_dropped"] metrics. *)
val select_bloom :
  filters:(string * Column.Bloom.t) list ->
  Expr.t option ->
  Relation.t ->
  Relation.t

(** Zero the block counters — the obs metrics ["colscan.blocks_skipped"] /
    ["colscan.blocks_scanned"] (Runner does this per query). *)
val reset_counters : unit -> unit

(** [(skipped, scanned)] blocks since the last reset; maintained in
    per-domain metric cells so parallel scans report correctly. *)
val counters : unit -> int * int

(** [(blocks skipped, rows probed, rows dropped)] by transferred Bloom
    filters since process start — take deltas around a query. *)
val transfer_counters : unit -> int * int * int
