(** First-order formulas over linear-constraint atoms, with the
    normalization steps the paper's derivation procedure needs (§5.2):
    negation-normal form (for step UE), disjunctive normal form (for step
    DE), plus evaluation and simplification. *)

type t =
  | True
  | False
  | Atom of Atom.t
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string * t
  | Forall of string * t

val atom : Atom.t -> t
val conj : t list -> t
val disj : t list -> t
val neg : t -> t
val exists_many : string list -> t -> t
val forall_many : string list -> t -> t

(** Free variables. *)
val vars : t -> string list

val rename : (string -> string) -> t -> t

(** Push negations to the leaves; the result contains no [Not], no [Forall]
    (∀x θ ↦ ¬∃x ¬θ is applied by the caller before this), and negated atoms
    are rewritten as atoms (¬(e = 0) becomes a disjunction). Quantifier-free
    input is required. *)
val nnf : t -> t

(** Disjunctive normal form of a quantifier-free formula already in NNF:
    a list of conjunctions of atoms. *)
val dnf : t -> Atom.t list list

val eval : (string -> Rat.t) -> t -> bool
val eval_float : (string -> float) -> t -> bool

(** Flatten, fold constants, drop duplicate or implied atoms in
    conjunctions/disjunctions.  Quantifier-free input only. *)
val simplify : t -> t

val to_string : t -> string
val equal : t -> t -> bool
