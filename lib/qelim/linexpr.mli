(** Linear expressions Σ cᵢ·xᵢ + k over named real variables. *)

type t

val zero : t
val const : Rat.t -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val coeff : t -> string -> Rat.t
val constant : t -> Rat.t
val vars : t -> string list
val is_constant : t -> bool

(** Remove the variable, returning its coefficient and the remainder. *)
val split_var : t -> string -> Rat.t * t

(** Substitute a linear expression for a variable. *)
val subst : string -> t -> t -> t

val rename : (string -> string) -> t -> t
val eval : (string -> Rat.t) -> t -> Rat.t
val eval_float : (string -> float) -> t -> float
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
