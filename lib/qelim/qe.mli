(** Quantifier elimination for linear arithmetic over the reals, composed of
    the paper's three steps (§5.2): UE (∀x θ ↦ ¬∃x ¬θ), DE (∃ distributes
    over ∨ after DNF conversion) and EE (Fourier–Motzkin on conjunctions). *)

(** [eliminate_exists xs f]: a quantifier-free formula over the remaining
    variables equivalent to ∃xs. f ([f] quantifier-free). *)
val eliminate_exists : string list -> Formula.t -> Formula.t

(** [forall_implies ~vars ~premise ~conclusion]: quantifier-free equivalent
    of ∀vars (premise ⇒ conclusion) — exactly the shape of the paper's
    subsumption condition ∀w_r (Θ(w', w_r) ⇒ Θ(w, w_r)). *)
val forall_implies :
  vars:string list -> premise:Formula.t -> conclusion:Formula.t -> Formula.t

(** Eliminate every quantifier in a closed-under-prefix formula (quantifiers
    may appear anywhere); used by tests. *)
val eliminate_all : Formula.t -> Formula.t

(** Sound (refutation-complete for linear reals) implication test: does the
    quantifier-free [f] entail the atom on every assignment?  Implemented as
    unsatisfiability of f ∧ ¬atom via full elimination. *)
val implies_atom : Formula.t -> Atom.t -> bool
