(** Exact rational arithmetic over native integers (the paper uses
    Mathematica for its constraint manipulation; query constants are small,
    so machine-word rationals suffice and stay exact). *)

type t

val zero : t
val one : t
val minus_one : t
val of_int : int -> t
val make : int -> int -> t  (** [make num den]; raises on zero denominator *)

(** Exact when the float is representable; decimal constants from SQL are. *)
val of_float : float -> t

val to_float : t -> float
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val to_string : t -> string
val num : t -> int
val den : t -> int
