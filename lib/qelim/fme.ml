(* Classify an atom relative to x.  [e op 0] with coefficient c on x reads
   c·x + rest op 0, i.e. x op (-rest)/c when c > 0 (an upper bound) and the
   reverse inequality when c < 0 (a lower bound). *)
type bound =
  | Unrelated of Atom.t
  | Equality of Linexpr.t  (* x = this expression *)
  | Upper of Linexpr.t * bool  (* x ≤/(<) expr; bool = strict *)
  | Lower of Linexpr.t * bool  (* expr ≤/(<) x *)

let classify x (a : Atom.t) =
  let c, rest = Linexpr.split_var a.Atom.e x in
  if Rat.is_zero c then Unrelated a
  else
    let target = Linexpr.scale (Rat.neg (Rat.inv c)) rest in
    match a.Atom.op with
    | Atom.Eq -> Equality target
    | Atom.Le -> if Rat.sign c > 0 then Upper (target, false) else Lower (target, false)
    | Atom.Lt -> if Rat.sign c > 0 then Upper (target, true) else Lower (target, true)

let eliminate x atoms =
  let classified = List.map (classify x) atoms in
  let equalities =
    List.filter_map (function Equality e -> Some e | _ -> None) classified
  in
  match equalities with
  | repl :: _ ->
    (* Case (i): substitute the pinned value into every other atom. *)
    List.filter_map
      (fun (a : Atom.t) ->
        if Rat.is_zero (Linexpr.coeff a.Atom.e x) then Some a
        else
          let a' = Atom.subst x repl a in
          if Linexpr.equal a'.Atom.e Linexpr.zero && a'.Atom.op <> Atom.Lt then None
          else Some a')
      atoms
  | [] ->
    let unrelated =
      List.filter_map (function Unrelated a -> Some a | _ -> None) classified
    in
    let lowers =
      List.filter_map (function Lower (e, s) -> Some (e, s) | _ -> None) classified
    in
    let uppers =
      List.filter_map (function Upper (e, s) -> Some (e, s) | _ -> None) classified
    in
    (* Case (ii): cross bounds; case (iii): one-sided bounds vanish. *)
    let crossed =
      List.concat_map
        (fun (lo, slo) ->
          List.map
            (fun (hi, shi) ->
              let e = Linexpr.sub lo hi in
              { Atom.e; op = (if slo || shi then Atom.Lt else Atom.Le) })
            uppers)
        lowers
    in
    unrelated @ crossed

let eliminate_many xs atoms = List.fold_left (fun acc x -> eliminate x acc) atoms xs
