let eliminate_exists xs f =
  let f = Formula.nnf f in
  let disjuncts = Formula.dnf f in
  let eliminated =
    List.map
      (fun conj ->
        let atoms = Fme.eliminate_many xs conj in
        Formula.conj (List.map Formula.atom atoms))
      disjuncts
  in
  Formula.simplify (Formula.disj eliminated)

let forall_implies ~vars ~premise ~conclusion =
  (* ∀v (P ⇒ C)  ≡  ¬∃v (P ∧ ¬C) *)
  let body = Formula.conj [ premise; Formula.Not conclusion ] in
  let ex = eliminate_exists vars body in
  Formula.simplify (Formula.nnf (Formula.Not ex))

let implies_atom f atom =
  let body = Formula.conj [ f; Formula.Not (Formula.atom atom) ] in
  let residue = eliminate_exists (Formula.vars body) body in
  match residue with Formula.False -> true | _ -> false

let rec eliminate_all f =
  match f with
  | Formula.True | Formula.False | Formula.Atom _ -> f
  | Formula.Not g -> Formula.simplify (Formula.Not (eliminate_all g))
  | Formula.And gs -> Formula.simplify (Formula.And (List.map eliminate_all gs))
  | Formula.Or gs -> Formula.simplify (Formula.Or (List.map eliminate_all gs))
  | Formula.Exists (x, g) -> eliminate_exists [ x ] (eliminate_all g)
  | Formula.Forall (x, g) ->
    let inner = eliminate_all g in
    Formula.simplify
      (Formula.nnf (Formula.Not (eliminate_exists [ x ] (Formula.nnf (Formula.Not inner)))))
