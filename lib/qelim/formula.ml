type t =
  | True
  | False
  | Atom of Atom.t
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string * t
  | Forall of string * t

let atom a = Atom a

let conj = function [] -> True | [ f ] -> f | fs -> And fs
let disj = function [] -> False | [ f ] -> f | fs -> Or fs
let neg f = Not f
let exists_many xs f = List.fold_right (fun x acc -> Exists (x, acc)) xs f
let forall_many xs f = List.fold_right (fun x acc -> Forall (x, acc)) xs f

module S = Set.Make (String)

let vars f =
  let rec go bound = function
    | True | False -> S.empty
    | Atom a -> S.diff (S.of_list (Atom.vars a)) bound
    | Not g -> go bound g
    | And gs | Or gs -> List.fold_left (fun acc g -> S.union acc (go bound g)) S.empty gs
    | Exists (x, g) | Forall (x, g) -> go (S.add x bound) g
  in
  S.elements (go S.empty f)

let rec rename fn = function
  | True -> True
  | False -> False
  | Atom a -> Atom (Atom.rename fn a)
  | Not g -> Not (rename fn g)
  | And gs -> And (List.map (rename fn) gs)
  | Or gs -> Or (List.map (rename fn) gs)
  | Exists (x, g) -> Exists (fn x, rename fn g)
  | Forall (x, g) -> Forall (fn x, rename fn g)

(* ¬(e ≤ 0) ≡ -e < 0;  ¬(e < 0) ≡ -e ≤ 0;  ¬(e = 0) ≡ e < 0 ∨ -e < 0. *)
let negate_atom (a : Atom.t) =
  match a.Atom.op with
  | Atom.Le -> Atom { Atom.e = Linexpr.neg a.Atom.e; op = Atom.Lt }
  | Atom.Lt -> Atom { Atom.e = Linexpr.neg a.Atom.e; op = Atom.Le }
  | Atom.Eq ->
    Or
      [
        Atom { Atom.e = a.Atom.e; op = Atom.Lt };
        Atom { Atom.e = Linexpr.neg a.Atom.e; op = Atom.Lt };
      ]

let rec nnf = function
  | True -> True
  | False -> False
  | Atom a -> Atom a
  | And gs -> And (List.map nnf gs)
  | Or gs -> Or (List.map nnf gs)
  | Not g -> nnf_not g
  | Exists _ | Forall _ -> invalid_arg "Formula.nnf: quantified input"

and nnf_not = function
  | True -> False
  | False -> True
  | Atom a -> negate_atom a
  | Not g -> nnf g
  | And gs -> Or (List.map nnf_not gs)
  | Or gs -> And (List.map nnf_not gs)
  | Exists _ | Forall _ -> invalid_arg "Formula.nnf: quantified input"

let dnf f =
  let rec go = function
    | True -> [ [] ]
    | False -> []
    | Atom a -> [ [ a ] ]
    | Or gs -> List.concat_map go gs
    | And gs ->
      List.fold_left
        (fun acc g ->
          let ds = go g in
          List.concat_map (fun c -> List.map (fun d -> c @ d) ds) acc)
        [ [] ] gs
    | Not _ -> invalid_arg "Formula.dnf: input not in NNF"
    | Exists _ | Forall _ -> invalid_arg "Formula.dnf: quantified input"
  in
  go f

let rec eval_gen aeval f =
  match f with
  | True -> true
  | False -> false
  | Atom a -> aeval a
  | Not g -> not (eval_gen aeval g)
  | And gs -> List.for_all (eval_gen aeval) gs
  | Or gs -> List.exists (eval_gen aeval) gs
  | Exists _ | Forall _ -> invalid_arg "Formula.eval: quantified input"

let eval env f = eval_gen (Atom.eval env) f
let eval_float env f = eval_gen (Atom.eval_float env) f

(* Drop atoms implied by another atom of the same conjunction (and dually
   for disjunctions); keep the first of equals. *)
let prune_implied ~keep_stronger atoms =
  let rec go kept = function
    | [] -> List.rev kept
    | a :: rest ->
      let covered l =
        List.exists
          (fun b -> if keep_stronger then Atom.implies b a else Atom.implies a b)
          l
      in
      if covered kept || covered rest then go kept rest else go (a :: kept) rest
  in
  go [] atoms

let rec simplify f =
  match f with
  | True | False | Atom _ -> simplify_leaf f
  | Not g ->
    (match simplify g with
     | True -> False
     | False -> True
     | g' -> Not g')
  | And gs ->
    let gs = List.concat_map (fun g -> flatten_and (simplify g)) gs in
    if List.exists (fun g -> g = False) gs then False
    else begin
      let gs = List.filter (fun g -> g <> True) gs in
      let atoms, others =
        List.partition_map
          (function Atom a -> Left (Atom.normalize a) | g -> Right g)
          gs
      in
      let atoms = prune_implied ~keep_stronger:true atoms in
      conj (List.map atom atoms @ others)
    end
  | Or gs ->
    let gs = List.concat_map (fun g -> flatten_or (simplify g)) gs in
    if List.exists (fun g -> g = True) gs then True
    else begin
      let gs = List.filter (fun g -> g <> False) gs in
      let atoms, others =
        List.partition_map
          (function Atom a -> Left (Atom.normalize a) | g -> Right g)
          gs
      in
      let atoms = prune_implied ~keep_stronger:false atoms in
      disj (List.map atom atoms @ others)
    end
  | Exists _ | Forall _ -> invalid_arg "Formula.simplify: quantified input"

and simplify_leaf = function
  | Atom a ->
    (match Atom.truth a with
     | Some true -> True
     | Some false -> False
     | None -> Atom (Atom.normalize a))
  | f -> f

and flatten_and = function And gs -> gs | g -> [ g ]
and flatten_or = function Or gs -> gs | g -> [ g ]

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Atom a -> Atom.to_string a
  | Not g -> "!(" ^ to_string g ^ ")"
  | And gs -> "(" ^ String.concat " & " (List.map to_string gs) ^ ")"
  | Or gs -> "(" ^ String.concat " | " (List.map to_string gs) ^ ")"
  | Exists (x, g) -> "E" ^ x ^ ". " ^ to_string g
  | Forall (x, g) -> "A" ^ x ^ ". " ^ to_string g

let rec equal a b =
  match a, b with
  | True, True | False, False -> true
  | Atom x, Atom y -> Atom.equal x y
  | Not x, Not y -> equal x y
  | And xs, And ys | Or xs, Or ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Exists (x, f), Exists (y, g) | Forall (x, f), Forall (y, g) ->
    String.equal x y && equal f g
  | _ -> false
