type op = Le | Lt | Eq

type t = { e : Linexpr.t; op : op }

let le a b = { e = Linexpr.sub a b; op = Le }
let lt a b = { e = Linexpr.sub a b; op = Lt }
let eq a b = { e = Linexpr.sub a b; op = Eq }

let truth t =
  if Linexpr.is_constant t.e then
    let k = Linexpr.constant t.e in
    Some
      (match t.op with
       | Le -> Rat.sign k <= 0
       | Lt -> Rat.sign k < 0
       | Eq -> Rat.is_zero k)
  else None

let vars t = Linexpr.vars t.e
let mentions t x = not (Rat.is_zero (Linexpr.coeff t.e x))
let rename f t = { t with e = Linexpr.rename f t.e }
let subst x repl t = { t with e = Linexpr.subst x repl t.e }

let eval env t =
  let v = Rat.sign (Linexpr.eval env t.e) in
  match t.op with Le -> v <= 0 | Lt -> v < 0 | Eq -> v = 0

let eval_float env t =
  let v = Linexpr.eval_float env t.e in
  match t.op with Le -> v <= 0. | Lt -> v < 0. | Eq -> v = 0.

let op_rank = function Le -> 0 | Lt -> 1 | Eq -> 2

let compare a b =
  let c = Stdlib.compare (op_rank a.op) (op_rank b.op) in
  if c <> 0 then c else Linexpr.compare a.e b.e

let equal a b = compare a b = 0

let normalize t =
  match Linexpr.vars t.e with
  | [] -> t
  | x :: _ ->
    let c = Linexpr.coeff t.e x in
    let s = Rat.of_int (Rat.sign c) in
    let k = Rat.div s c (* positive scale making leading coeff ±1 *) in
    let e = Linexpr.scale k t.e in
    (* For Eq, also fix the sign of the leading coefficient to +1. *)
    if t.op = Eq && Rat.sign (Linexpr.coeff e x) < 0 then
      { e = Linexpr.neg e; op = Eq }
    else { t with e }

let implies a b =
  (* e + k1 op1 0 implies e + k2 op2 0 when the bound is at least as tight. *)
  let da = Linexpr.sub a.e (Linexpr.const (Linexpr.constant a.e))
  and db = Linexpr.sub b.e (Linexpr.const (Linexpr.constant b.e)) in
  if not (Linexpr.equal da db) then equal a b
  else
    let ka = Linexpr.constant a.e and kb = Linexpr.constant b.e in
    match a.op, b.op with
    | Le, Le | Lt, Lt | Lt, Le | Eq, Eq -> Rat.compare ka kb >= 0
    | Le, Lt -> Rat.compare ka kb > 0
    | Eq, Le -> Rat.compare ka kb >= 0  (* e = -ka, need -ka + kb <= 0 *)
    | Eq, Lt -> Rat.compare ka kb > 0
    | Le, Eq | Lt, Eq -> false

let op_to_string = function Le -> "<=" | Lt -> "<" | Eq -> "="

let to_string t =
  (* Render with positive terms on the left for readability. *)
  Printf.sprintf "%s %s 0" (Linexpr.to_string t.e) (op_to_string t.op)
