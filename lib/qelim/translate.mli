(** Bridge between SQL predicates ([Relalg.Expr]) and linear-arithmetic
    formulas.  Translation is partial: multiplication of two columns,
    IN-subqueries, or non-numeric constants yield [None], in which case the
    optimizer simply forgoes the technique needing the formula. *)

(** [linexpr ~var e]: linear view of a scalar expression; [var] names the
    logic variable standing for a column. *)
val linexpr : var:(Relalg.Schema.col -> string) -> Relalg.Expr.t -> Linexpr.t option

(** [formula ~var p]: logical form of a boolean SQL predicate. *)
val formula : var:(Relalg.Schema.col -> string) -> Relalg.Expr.t -> Formula.t option
