type t = { n : int; d : int }  (* invariant: d > 0, gcd(|n|, d) = 1 *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make n d =
  if d = 0 then invalid_arg "Rat.make: zero denominator";
  let s = if d < 0 then -1 else 1 in
  let n = s * n and d = s * d in
  let g = gcd (abs n) d in
  if g = 0 then { n = 0; d = 1 } else { n = n / g; d = d / g }

let zero = { n = 0; d = 1 }
let one = { n = 1; d = 1 }
let minus_one = { n = -1; d = 1 }
let of_int n = { n; d = 1 }

let of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then of_int (int_of_float f)
  else begin
    (* Scale by powers of ten up to 10^9; exact for decimal literals. *)
    let rec go scale k =
      let scaled = f *. scale in
      if Float.is_integer scaled || k >= 9 then
        make (int_of_float (Float.round scaled)) (int_of_float scale)
      else go (scale *. 10.) (k + 1)
    in
    go 1. 0
  end

let to_float t = float_of_int t.n /. float_of_int t.d
let add a b = make ((a.n * b.d) + (b.n * a.d)) (a.d * b.d)
let sub a b = make ((a.n * b.d) - (b.n * a.d)) (a.d * b.d)
let mul a b = make (a.n * b.n) (a.d * b.d)

let div a b =
  if b.n = 0 then invalid_arg "Rat.div: division by zero";
  make (a.n * b.d) (a.d * b.n)

let neg a = { a with n = -a.n }

let inv a =
  if a.n = 0 then invalid_arg "Rat.inv: zero";
  make a.d a.n

let compare a b = compare (a.n * b.d) (b.n * a.d)
let equal a b = a.n = b.n && a.d = b.d
let sign a = compare a zero
let is_zero a = a.n = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_string a =
  if a.d = 1 then string_of_int a.n else Printf.sprintf "%d/%d" a.n a.d

let num a = a.n
let den a = a.d
