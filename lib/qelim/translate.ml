open Relalg

let ( let* ) = Option.bind

let rec linexpr ~var e =
  match e with
  | Expr.Const (Value.Int i) -> Some (Linexpr.const (Rat.of_int i))
  | Expr.Const (Value.Float f) -> Some (Linexpr.const (Rat.of_float f))
  | Expr.Const _ -> None
  | Expr.Col c -> Some (Linexpr.var (var c))
  | Expr.Neg a ->
    let* la = linexpr ~var a in
    Some (Linexpr.neg la)
  | Expr.Binop (Expr.Add, a, b) ->
    let* la = linexpr ~var a in
    let* lb = linexpr ~var b in
    Some (Linexpr.add la lb)
  | Expr.Binop (Expr.Sub, a, b) ->
    let* la = linexpr ~var a in
    let* lb = linexpr ~var b in
    Some (Linexpr.sub la lb)
  | Expr.Binop (Expr.Mul, a, b) ->
    let* la = linexpr ~var a in
    let* lb = linexpr ~var b in
    if Linexpr.is_constant la then Some (Linexpr.scale (Linexpr.constant la) lb)
    else if Linexpr.is_constant lb then Some (Linexpr.scale (Linexpr.constant lb) la)
    else None
  | Expr.Binop (Expr.Div, a, b) ->
    let* la = linexpr ~var a in
    let* lb = linexpr ~var b in
    if Linexpr.is_constant lb && not (Rat.is_zero (Linexpr.constant lb)) then
      Some (Linexpr.scale (Rat.inv (Linexpr.constant lb)) la)
    else None
  | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.In_set _ -> None

let rec formula ~var p =
  match p with
  | Expr.Const (Value.Bool true) -> Some Formula.True
  | Expr.Const (Value.Bool false) -> Some Formula.False
  | Expr.Cmp (op, a, b) ->
    let* la = linexpr ~var a in
    let* lb = linexpr ~var b in
    Some
      (match op with
       | Expr.Eq -> Formula.atom (Atom.eq la lb)
       | Expr.Lt -> Formula.atom (Atom.lt la lb)
       | Expr.Le -> Formula.atom (Atom.le la lb)
       | Expr.Gt -> Formula.atom (Atom.lt lb la)
       | Expr.Ge -> Formula.atom (Atom.le lb la)
       | Expr.Ne ->
         Formula.disj [ Formula.atom (Atom.lt la lb); Formula.atom (Atom.lt lb la) ])
  | Expr.And (a, b) ->
    let* fa = formula ~var a in
    let* fb = formula ~var b in
    Some (Formula.conj [ fa; fb ])
  | Expr.Or (a, b) ->
    let* fa = formula ~var a in
    let* fb = formula ~var b in
    Some (Formula.disj [ fa; fb ])
  | Expr.Not a ->
    let* fa = formula ~var a in
    Some (Formula.nnf (Formula.Not fa))
  | Expr.Const _ | Expr.Col _ | Expr.Binop _ | Expr.Neg _ | Expr.In_set _ -> None
