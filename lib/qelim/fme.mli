(** Fourier–Motzkin elimination of one variable from a conjunction of linear
    atoms (the EE step of the paper's derivation procedure, §5.2):

    - if some atom pins [x] by an equality, substitute it everywhere;
    - otherwise cross-multiply every lower bound with every upper bound
      (strict if either side is strict);
    - an [x] bounded on at most one side is simply dropped.

    The result is satisfiable exactly when ∃x of the input is. *)

val eliminate : string -> Atom.t list -> Atom.t list

(** Eliminate several variables in sequence. *)
val eliminate_many : string list -> Atom.t list -> Atom.t list
