(** Linear-constraint atoms [e op 0] with [op ∈ {≤, <, =}]. *)

type op = Le | Lt | Eq

type t = { e : Linexpr.t; op : op }

(** [le a b], [lt a b], [eq a b] build the atoms a ≤ b, a < b, a = b. *)

val le : Linexpr.t -> Linexpr.t -> t

val lt : Linexpr.t -> Linexpr.t -> t
val eq : Linexpr.t -> Linexpr.t -> t

(** [Some b] when the atom has no variables; [None] otherwise. *)
val truth : t -> bool option

val vars : t -> string list
val mentions : t -> string -> bool
val rename : (string -> string) -> t -> t
val subst : string -> Linexpr.t -> t -> t
val eval : (string -> Rat.t) -> t -> bool
val eval_float : (string -> float) -> t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

(** Syntactic normalization: scale so the leading coefficient is ±1,
    letting equal constraints with different scalings compare equal. *)
val normalize : t -> t

(** [implies a b]: does [a] syntactically imply [b]?  Sound but incomplete —
    recognizes same-expression constraints with weaker bounds (used only to
    tidy derived predicates). *)
val implies : t -> t -> bool

val to_string : t -> string
