module M = Map.Make (String)

type t = { coeffs : Rat.t M.t; const : Rat.t }
(* invariant: no zero coefficients stored *)

let zero = { coeffs = M.empty; const = Rat.zero }
let const k = { coeffs = M.empty; const = k }
let var x = { coeffs = M.singleton x Rat.one; const = Rat.zero }

let put m x c = if Rat.is_zero c then M.remove x m else M.add x c m

let add a b =
  {
    coeffs =
      M.fold (fun x c acc ->
          let c' = match M.find_opt x acc with Some d -> Rat.add c d | None -> c in
          put acc x c')
        b.coeffs a.coeffs;
    const = Rat.add a.const b.const;
  }

let scale k a =
  if Rat.is_zero k then zero
  else { coeffs = M.map (Rat.mul k) a.coeffs; const = Rat.mul k a.const }

let neg = scale Rat.minus_one
let sub a b = add a (neg b)

let coeff a x = match M.find_opt x a.coeffs with Some c -> c | None -> Rat.zero
let constant a = a.const
let vars a = List.map fst (M.bindings a.coeffs)
let is_constant a = M.is_empty a.coeffs

let split_var a x =
  (coeff a x, { a with coeffs = M.remove x a.coeffs })

let subst x e a =
  let c, rest = split_var a x in
  if Rat.is_zero c then a else add rest (scale c e)

let rename f a =
  M.fold (fun x c acc -> add acc (scale c (var (f x)))) a.coeffs (const a.const)

let eval env a =
  M.fold (fun x c acc -> Rat.add acc (Rat.mul c (env x))) a.coeffs a.const

let eval_float env a =
  M.fold
    (fun x c acc -> acc +. (Rat.to_float c *. env x))
    a.coeffs (Rat.to_float a.const)

let compare a b =
  let c = M.compare Rat.compare a.coeffs b.coeffs in
  if c <> 0 then c else Rat.compare a.const b.const

let equal a b = compare a b = 0

let to_string a =
  let terms =
    M.fold
      (fun x c acc ->
        let t =
          if Rat.equal c Rat.one then x
          else if Rat.equal c Rat.minus_one then "-" ^ x
          else Rat.to_string c ^ "*" ^ x
        in
        t :: acc)
      a.coeffs []
  in
  let terms = List.rev terms in
  let terms =
    if Rat.is_zero a.const && terms <> [] then terms
    else terms @ [ Rat.to_string a.const ]
  in
  match terms with [] -> "0" | _ -> String.concat " + " terms
