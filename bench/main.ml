(* Benchmark harness regenerating every figure of the paper's evaluation
   (§8): Figures 1-8 plus the Appendix E plans.  Run all targets with

     dune exec bench/main.exe

   or individual ones:

     dune exec bench/main.exe -- fig1 fig5 plans micro [--rows N]

   Row counts are scaled down from the paper's 3×10^5 (our substrate is an
   in-memory interpreter, not PostgreSQL on a testbed); the claims under
   test are the *shapes* — who wins, by roughly what factor, where the
   crossovers fall.  See EXPERIMENTS.md for the paper-vs-measured record. *)

open Relalg

let default_rows =
  match Sys.getenv_opt "SI_ROWS" with Some s -> int_of_string s | None -> 6000

let rows = ref default_rows
let seed = 2017

(* SI_WORKERS overrides both the Vendor A domain count and the default
   worker count of the `par` target (also settable with --workers). *)
let env_workers = Option.map int_of_string (Sys.getenv_opt "SI_WORKERS")
let par_workers = ref (Option.value env_workers ~default:4)

(* --layout column (or SI_LAYOUT=column) stores every generated table in
   chunked columnar form, so filtered scans go through the zone-map
   block-skipping path; results are checked bag-equal either way. *)
let layout : [ `Row | `Column ] ref =
  ref
    (match Sys.getenv_opt "SI_LAYOUT" with
     | Some ("column" | "col") -> `Column
     | _ -> `Row)

let layout_name () = match !layout with `Row -> "row" | `Column -> "column"

(* --no-vector (or SI_VECTOR=0) disables the vectorized NLJP inner loop,
   so row-vs-vectorized ablations can run from the same binary. *)
let vector_on =
  ref (match Sys.getenv_opt "SI_VECTOR" with Some "0" -> false | _ -> true)

(* --no-transfer forces predicate transfer off; otherwise the runner's own
   SI_TRANSFER default applies (on unless 0/false/off/no). *)
let transfer_opt : bool option ref = ref None

let transfer_enabled () =
  match !transfer_opt with
  | Some b -> b
  | None ->
    (match Sys.getenv_opt "SI_TRANSFER" with
     | Some ("0" | "false" | "off" | "no") -> false
     | _ -> true)

let nljp_cfg () =
  { Core.Nljp.default_config with Core.Nljp.vector = !vector_on }

(* Smart-path runner honoring the bench-wide vector and transfer switches. *)
let run_smart ?tech ?workers ?memo_strategy ?adaptive_apriori catalog q =
  Core.Runner.run ?tech ~nljp_config:(nljp_cfg ()) ?workers ?memo_strategy
    ?adaptive_apriori ?transfer:!transfer_opt catalog q

(* ---- machine-readable results (--json FILE) ---- *)

type json_row = {
  j_name : string;
  j_technique : string;
  j_workers : int;
  j_layout : string;
  j_vector : bool;  (* the SI_VECTOR / --no-vector switch at record time *)
  j_transfer : bool;  (* the SI_TRANSFER / --no-transfer switch *)
  j_ms_raw : float;
  j_ms_scaled : float;
  j_load_ms : float option;
      (* data-load time (synthetic generation / CSV parse + layout build)
         behind this measurement — informational, never a gate *)
  j_counters : (string * int) list;
      (* operator counters under the lib/obs names (nljp., colscan. and
         optimizer. prefixes), captured as snapshot deltas around the run *)
  j_qps : float option;  (* serve targets: sustained queries per second *)
  j_p50_ms : float option;  (* serve targets: median request latency *)
  j_p95_ms : float option;  (* serve targets: tail request latency *)
  j_session : int option;
      (* server session behind this row's counters, when the row is one
         session's slice rather than a whole-server aggregate *)
  j_max_rss_mb : float;  (* process peak RSS when the row was recorded *)
}

let json_path = ref None
let json_rows : json_row list ref = ref []

(* Peak resident set of this process in MB, from /proc/self/status (VmHWM),
   with the GC's top-of-heap as a portable fallback.  Process-wide and
   monotonic, so per-row values record "the peak so far", not a per-bench
   footprint — informational in `bench diff`, never a gate. *)
let max_rss_mb () =
  let from_proc () =
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf
              (String.sub line 6 (String.length line - 6))
              " %d kB"
              (fun kb -> float_of_int kb /. 1024.)
          else scan ()
        in
        scan ())
  in
  try from_proc ()
  with _ ->
    let st = Gc.quick_stat () in
    float_of_int (st.Gc.top_heap_words * (Sys.word_size / 8)) /. (1024. *. 1024.)

(* Short commit identifier stamped into every JSON artifact, so a results
   file can always be traced back to the tree that produced it. *)
let git_sha =
  lazy
    (match Sys.getenv_opt "GITHUB_SHA" with
     | Some s when String.length s >= 7 -> String.sub s 0 7
     | Some s when s <> "" -> s
     | _ ->
       (try
          let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
          let line = try String.trim (input_line ic) with End_of_file -> "" in
          ignore (Unix.close_process_in ic);
          if line = "" then "unknown" else line
        with _ -> "unknown"))

let record ?(workers = 1) ?(counters = []) ?ms_scaled ?load_ms ?qps ?p50_ms
    ?p95_ms ?session ~technique name ms_raw =
  json_rows :=
    {
      j_name = name;
      j_technique = technique;
      j_workers = workers;
      j_layout = layout_name ();
      j_vector = !vector_on;
      j_transfer = transfer_enabled ();
      j_ms_raw = ms_raw;
      j_ms_scaled = Option.value ms_scaled ~default:ms_raw;
      j_load_ms = load_ms;
      j_counters = counters;
      j_qps = qps;
      j_p50_ms = p50_ms;
      j_p95_ms = p95_ms;
      j_session = session;
      j_max_rss_mb = max_rss_mb ();
    }
    :: !json_rows

let counters_json ?session counters : Obs.Json.t =
  let base =
    List.map (fun (k, v) -> (k, Obs.Json.Num (float_of_int v))) counters
  in
  Obs.Json.Obj
    (match session with
     | Some sid -> ("session_id", Obs.Json.Num (float_of_int sid)) :: base
     | None -> base)

let row_to_json r : Obs.Json.t =
  Obs.Json.Obj
    ([
      ("name", Obs.Json.Str r.j_name);
      ("technique", Obs.Json.Str r.j_technique);
      ("workers", Obs.Json.Num (float_of_int r.j_workers));
      ("layout", Obs.Json.Str r.j_layout);
      ("git_sha", Obs.Json.Str (Lazy.force git_sha));
      ("si_vector", Obs.Json.Bool r.j_vector);
      ("si_transfer", Obs.Json.Bool r.j_transfer);
      ("ms_raw", Obs.Json.Num r.j_ms_raw);
      ("ms_scaled", Obs.Json.Num r.j_ms_scaled);
    ]
    @ (match r.j_load_ms with
       | Some l -> [ ("load_ms", Obs.Json.Num l) ]
       | None -> [])
    @ (match r.j_qps with
       | Some q -> [ ("qps", Obs.Json.Num q) ]
       | None -> [])
    @ (match r.j_p50_ms with
       | Some p -> [ ("p50_ms", Obs.Json.Num p) ]
       | None -> [])
    @ (match r.j_p95_ms with
       | Some p -> [ ("p95_ms", Obs.Json.Num p) ]
       | None -> [])
    @ [ ("max_rss_mb", Obs.Json.Num r.j_max_rss_mb);
        ("counters", counters_json ?session:r.j_session r.j_counters) ])

(* Through the lib/obs serializer — the old Printf "%S" writer produced
   OCaml string escapes, which are not valid JSON for control characters. *)
let write_json path =
  let oc = open_out path in
  output_string oc
    (Obs.Json.to_string (Obs.Json.Arr (List.rev_map row_to_json !json_rows)));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %d benchmark rows to %s\n" (List.length !json_rows) path

(* ---- timing and the Vendor A model ---- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Like [time], but also captures what the run did to the obs counter
   registry — the counters land in the JSON row next to the timing. *)
let time_obs f =
  let before = Obs.Metrics.snapshot () in
  let r, t = time f in
  (r, t, Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()))

(* The paper's Vendor A owes its edge to aggressive 4-core parallelism
   (Appendix E).  On a >= 4-core host we run the real Domain-parallel
   executor; this container exposes a single CPU, so there we run
   single-domain and divide by a fixed effective-parallelism factor,
   clearly labelled (see DESIGN.md).  Both the raw measured time and the
   divisor-scaled figure are always reported, so the scaling can never
   silently replace a real measurement. *)
let vendor_workers, vendor_divisor, vendor_label =
  match env_workers with
  | Some w when w > 1 -> (w, 1.0, Printf.sprintf "VendorA(%ddom)" w)
  | _ ->
    if Domain.recommended_domain_count () >= 4 then (4, 1.0, "VendorA(4dom)")
    else (1, 2.5, "VendorA(t/2.5)")

let run_base catalog q = Core.Runner.run_baseline catalog q

let run_vendor catalog q = Core.Runner.run_baseline ~workers:vendor_workers catalog q

(* Returns (result, raw measured seconds, divisor-scaled seconds, counters). *)
let time_vendor catalog q =
  let r, t, c = time_obs (fun () -> run_vendor catalog q) in
  (r, t, t /. vendor_divisor, c)

(* ---- catalog setup ---- *)

let baseball_catalog ?(bt = true) ~rows () =
  let catalog = Catalog.create () in
  ignore (Workload.Baseball.register catalog ~rows ~seed);
  Workload.Baseball.build_indexes catalog ~bt;
  if !layout = `Column then Catalog.set_all_layouts catalog `Column;
  catalog

let unpivoted_catalog ?(bt = true) ~rows () =
  let catalog = Catalog.create () in
  ignore (Workload.Baseball.register_unpivoted catalog ~rows ~seed);
  Workload.Baseball.build_indexes catalog ~bt;
  if !layout = `Column then Catalog.set_all_layouts catalog `Column;
  catalog

let check_equal name a b =
  if not (Relation.equal_bag a b) then
    Printf.printf "!! RESULT MISMATCH on %s — investigate\n%!" name

(* ---- Figure 1 ---- *)

let techniques =
  [ ("pruning", Core.Optimizer.only `Pruning);
    ("memo", Core.Optimizer.only `Memo);
    ("apriori", Core.Optimizer.only `Apriori);
    ("all", Core.Optimizer.all_techniques) ]

type fig1_row = {
  qname : string;
  base_t : float;
  vendor_raw_t : float;  (* measured, before any divisor *)
  vendor_t : float;  (* divisor-scaled *)
  tech_t : (string * float * bool) list;  (* name, seconds, applied? *)
  all_report : Core.Runner.report;
}

let rec report_has_apriori (rep : Core.Runner.report) =
  rep.Core.Runner.apriori <> []
  || List.exists (fun (_, r) -> report_has_apriori r) rep.Core.Runner.cte_reports

let fig1_measure ?load_ms catalog (qname, sql) =
  let q = Sqlfront.Parser.parse sql in
  let base, base_t, base_c = time_obs (fun () -> run_base catalog q) in
  record ~technique:"base" ~counters:base_c ?load_ms qname (base_t *. 1000.);
  let vend, vendor_raw_t, vendor_t, vendor_c = time_vendor catalog q in
  record ~technique:"vendor" ~workers:vendor_workers ~counters:vendor_c
    ~ms_scaled:(vendor_t *. 1000.) ?load_ms qname (vendor_raw_t *. 1000.);
  check_equal (qname ^ "/vendor") base vend;
  let all_report = ref None in
  let tech_t =
    List.map
      (fun (tname, tech) ->
        let (r, rep), t, c = time_obs (fun () -> run_smart ~tech catalog q) in
        check_equal (qname ^ "/" ^ tname) base r;
        if tname = "all" then all_report := Some rep;
        record ~technique:tname ~counters:c ?load_ms qname (t *. 1000.);
        let applied =
          match tname with "apriori" -> report_has_apriori rep | _ -> true
        in
        (tname, t, applied))
      techniques
  in
  Printf.printf "%-6s measured\n%!" qname;
  { qname; base_t; vendor_raw_t; vendor_t; tech_t; all_report = Option.get !all_report }

let fig1 () =
  Printf.printf
    "=== Figure 1: normalized running times (PostgreSQL-baseline = 1.0) ===\n";
  Printf.printf
    "rows = %d; normalized time (absolute seconds); '-' = not applicable\n\n" !rows;
  let catalog, load_t = time (fun () -> baseball_catalog ~rows:!rows ()) in
  let results =
    List.map
      (fig1_measure ~load_ms:(load_t *. 1000.) catalog)
      Workload.Queries.figure1
  in
  print_newline ();
  Printf.printf "%-6s | %-16s | %-16s | %-16s | %-16s | %-16s | %-16s\n" "query"
    "base" vendor_label "pruning" "memo" "apriori" "all";
  List.iter
    (fun r ->
      let cell (t, applied) =
        if not applied then "        -       "
        else Printf.sprintf "%6.3f (%6.2fs)" (t /. r.base_t) t
      in
      let tech name =
        let _, t, a = List.find (fun (n, _, _) -> n = name) r.tech_t in
        cell (t, a)
      in
      Printf.printf "%-6s | %s | %s | %s | %s | %s | %s\n" r.qname
        (cell (r.base_t, true))
        (cell (r.vendor_t, true))
        (tech "pruning") (tech "memo") (tech "apriori") (tech "all"))
    results;
  if vendor_divisor <> 1.0 then begin
    Printf.printf
      "\n%s raw measured times (before the /%.1f effective-parallelism divisor):\n"
      vendor_label vendor_divisor;
    List.iter
      (fun r -> Printf.printf "  %-6s %6.2fs raw -> %6.2fs scaled\n" r.qname
          r.vendor_raw_t r.vendor_t)
      results
  end;
  print_newline ();
  results

(* ---- Figure 2 ---- *)

let pearson xs ys =
  let n = float_of_int (Array.length xs) in
  let mean a = Array.fold_left ( +. ) 0. a /. n in
  let mx = mean xs and my = mean ys in
  let cov = ref 0. and vx = ref 0. and vy = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy))
    xs;
  !cov /. (sqrt (!vx *. !vy) +. 1e-9)

let fig2 () =
  Printf.printf "=== Figure 2: data distributions of the two attribute pairings ===\n";
  Printf.printf
    "(paper: same template query returns 1.8%% of records on one pairing and\n\
    \ 3.1%% on the other at k=500 — the pairings differ in correlation)\n\n";
  let catalog = baseball_catalog ~rows:!rows () in
  let tbl = Catalog.find catalog Workload.Baseball.table_name in
  let col name =
    let i = Schema.index_of tbl.Catalog.rel.Relation.schema name in
    Array.map (fun row -> Value.to_float row.(i)) (Relation.rows tbl.Catalog.rel)
  in
  let total = Relation.cardinality tbl.Catalog.rel in
  List.iter
    (fun (x, y) ->
      let xs = col x and ys = col y in
      let corr = pearson xs ys in
      let k = max 1 (500 * total / 300000) in
      let q = Sqlfront.Parser.parse (Workload.Queries.skyband ~a:(x, y) ~k ()) in
      let result, _ = run_smart catalog q in
      Printf.printf
        "pairing (%-5s, %-5s): pearson %+.2f; skyband k=%d returns %5d rows = %.1f%% of records\n"
        x y corr k
        (Relation.cardinality result)
        (100. *. float_of_int (Relation.cardinality result) /. float_of_int total))
    [ ("b_h", "b_hr"); ("b_2b", "b_3b") ];
  print_newline ()

(* ---- Figure 3 ---- *)

let fig3 fig1_results =
  Printf.printf "=== Figure 3: NLJP cache sizes at end of execution ===\n";
  Printf.printf
    "(paper: no cache above 3000 kB, most below 500 kB, mean 571 kB /\n\
    \ 10371 rows at 3e5 input rows; Q5's rows approach its input size)\n\n";
  Printf.printf "%-6s %12s %12s\n" "query" "cache rows" "cache kB";
  let total_rows = ref 0 and total_kb = ref 0 and n = ref 0 in
  List.iter
    (fun r ->
      let rows = Core.Runner.cache_rows r.all_report in
      let kb = Core.Runner.cache_bytes r.all_report / 1024 in
      total_rows := !total_rows + rows;
      total_kb := !total_kb + kb;
      incr n;
      Printf.printf "%-6s %12d %12d\n" r.qname rows kb)
    fig1_results;
  Printf.printf "mean   %12d %12d\n\n" (!total_rows / max 1 !n) (!total_kb / max 1 !n)

(* ---- Figure 4 ---- *)

let fig4 () =
  Printf.printf
    "=== Figure 4: Q1 under index configurations (PK / PK+BT / PK+BT+CI) ===\n";
  Printf.printf
    "(paper: BT gives PostgreSQL ~2x; our worst case (PK only) still ~64x over\n\
    \ base; CI a further gain on top of BT)\n\n";
  let sql = List.assoc "Q1" Workload.Queries.figure1 in
  let q = Sqlfront.Parser.parse sql in
  let configs = [ ("PK", false, false); ("PK+BT", true, false); ("PK+BT+CI", true, true) ] in
  Printf.printf "%-10s %12s %14s %14s %14s\n" "indexes" "base" "prune" "memo" "prune+memo";
  List.iter
    (fun (label, bt, ci) ->
      let catalog = baseball_catalog ~bt ~rows:!rows () in
      let base, base_t = time (fun () -> run_base catalog q) in
      let nljp_config =
        { (nljp_cfg ()) with Core.Nljp.inner_index = bt; cache_index = ci }
      in
      let run_tech tech =
        let (r, _), t = time (fun () -> Core.Runner.run ~tech ~nljp_config catalog q) in
        check_equal ("fig4/" ^ label) base r;
        t
      in
      let prune_t = run_tech (Core.Optimizer.only `Pruning) in
      let memo_t = run_tech (Core.Optimizer.only `Memo) in
      let both_t =
        run_tech { Core.Optimizer.no_techniques with memo = true; pruning = true }
      in
      Printf.printf "%-10s %10.2fs %12.3fs %12.3fs %12.3fs\n%!" label base_t prune_t
        memo_t both_t)
    configs;
  (* Skyband prune caches stay tiny (a few dominators prune everything), so
     CI cannot matter there at any scale.  Its lever is the complex query,
     where p⪰ equates the category/attr dimensions and CI hash-partitions
     the cache on them instead of scanning it linearly. *)
  let rows_kv = !rows / 2 in
  let catalog_kv = unpivoted_catalog ~rows:rows_kv () in
  let q_cplx = Sqlfront.Parser.parse (Workload.Queries.complex ~threshold:(max 5 (rows_kv / 100))) in
  let run_ci ci =
    let nljp_config =
      { (nljp_cfg ()) with Core.Nljp.memo = false; cache_index = ci }
    in
    let (_, rep), t =
      time (fun () ->
          Core.Runner.run ~tech:(Core.Optimizer.only `Pruning) ~nljp_config catalog_kv
            q_cplx)
    in
    (t, Core.Runner.cache_rows rep)
  in
  let t_no, rows_no = run_ci false in
  let t_ci, rows_ci = run_ci true in
  Printf.printf
    "\nCI sensitivity on the complex query (%d unpivoted rows), prune-only:\n\
     without CI (flat cache scan) %.3fs (%d cache rows); with CI\n\
     (cache partitioned on p⪰'s equality dimensions) %.3fs (%d cache rows)\n\n"
    rows_kv t_no rows_no t_ci rows_ci

(* ---- Figures 5-8: parameter sweeps ---- *)

let sweep_header title expectation =
  Printf.printf "=== %s ===\n%s\n\n" title expectation;
  Printf.printf "%-10s %12s %14s %14s %14s\n" "param" "base" "vendor raw" vendor_label
    "smart"

let sweep_row param base_t vendor_raw_t vendor_t smart_t =
  Printf.printf "%-10s %10.2fs %12.2fs %12.2fs %12.3fs\n%!" param base_t vendor_raw_t
    vendor_t smart_t

let fig5 () =
  sweep_header "Figure 5: skyband running time vs HAVING threshold"
    "(paper: base/vendor flat w.r.t. threshold — they apply HAVING last;\n\
    \ ours grows with k, the advantage shrinking as the query gets less picky)";
  let catalog = baseball_catalog ~rows:!rows () in
  List.iter
    (fun k ->
      let q = Sqlfront.Parser.parse (Workload.Queries.skyband ~k ()) in
      let base, base_t = time (fun () -> run_base catalog q) in
      let _, vendor_raw_t, vendor_t, _ = time_vendor catalog q in
      let (r, _), smart_t = time (fun () -> run_smart catalog q) in
      check_equal "fig5" base r;
      sweep_row (Printf.sprintf "k=%d" k) base_t vendor_raw_t vendor_t smart_t)
    (* the last two thresholds scale with the input so the query stops being
       an iceberg at all — the regime where the paper's advantage fades *)
    [ 10; 25; 50; 100; 250; !rows / 4; !rows ];
  print_newline ()

let fig6 () =
  sweep_header "Figure 6: complex query running time vs HAVING threshold"
    "(paper: advantage *increases* with the threshold — >= gets pickier as it\n\
    \ grows; the paper's configuration applies prune+memo only)";
  let rows = !rows / 2 in
  let catalog = unpivoted_catalog ~rows () in
  Printf.printf "(unpivoted rows = %d; '+apriori' adds the Appendix D reducers)\n" rows;
  List.iter
    (fun threshold ->
      let q = Sqlfront.Parser.parse (Workload.Queries.complex ~threshold) in
      let base, base_t = time (fun () -> run_base catalog q) in
      let _, vendor_raw_t, vendor_t, _ = time_vendor catalog q in
      let paper_tech = { Core.Optimizer.no_techniques with memo = true; pruning = true } in
      let (r, _), smart_t = time (fun () -> run_smart ~tech:paper_tech catalog q) in
      let (r2, _), full_t = time (fun () -> run_smart catalog q) in
      check_equal "fig6" base r;
      check_equal "fig6/full" base r2;
      sweep_row (Printf.sprintf "c=%d" threshold) base_t vendor_raw_t vendor_t smart_t;
      Printf.printf "%-10s %40s +apriori: %8.3fs\n" "" "" full_t)
    [ 20; 40; 60; 80 ];
  print_newline ()

let fig7 () =
  sweep_header "Figure 7: skyband running time vs input size"
    "(paper: all grow with size; ours lowest throughout)";
  List.iter
    (fun n ->
      let catalog = baseball_catalog ~rows:n () in
      let q = Sqlfront.Parser.parse (Workload.Queries.skyband ~k:50 ()) in
      let base, base_t = time (fun () -> run_base catalog q) in
      let _, vendor_raw_t, vendor_t, _ = time_vendor catalog q in
      let (r, _), smart_t = time (fun () -> run_smart catalog q) in
      check_equal "fig7" base r;
      sweep_row (string_of_int n) base_t vendor_raw_t vendor_t smart_t)
    [ !rows / 4; !rows / 2; !rows; !rows * 2 ];
  print_newline ()

let fig8 () =
  sweep_header "Figure 8: complex query running time vs input size"
    "(paper: vendor can win at the smallest size, where the fixed threshold is\n\
    \ not selective at all; ours best as size grows)";
  List.iter
    (fun n ->
      let catalog = unpivoted_catalog ~rows:n () in
      let threshold = max 5 (!rows / 100) in
      let q = Sqlfront.Parser.parse (Workload.Queries.complex ~threshold) in
      let base, base_t = time (fun () -> run_base catalog q) in
      let _, vendor_raw_t, vendor_t, _ = time_vendor catalog q in
      let paper_tech = { Core.Optimizer.no_techniques with memo = true; pruning = true } in
      let (r, _), smart_t = time (fun () -> run_smart ~tech:paper_tech catalog q) in
      check_equal "fig8" base r;
      sweep_row (string_of_int n) base_t vendor_raw_t vendor_t smart_t)
    [ !rows / 8; !rows / 4; !rows / 2; !rows ];
  print_newline ()

(* ---- Appendix E: query plans ---- *)

let plans () =
  Printf.printf "=== Appendix E: baseline plans for Q1 ===\n\n";
  let catalog = baseball_catalog ~rows:1000 () in
  let q = Sqlfront.Parser.parse (List.assoc "Q1" Workload.Queries.figure1) in
  let plan = Sqlfront.Binder.bind catalog q in
  Printf.printf
    "PostgreSQL-style plan (indexed nested loop, hash aggregate, HAVING last):\n%s\n"
    (Plan.explain plan);
  Printf.printf
    "Vendor A executes the same plan with the outer side partitioned across\n\
     %d domains (its Parallelism / Gather Streams nodes).\n\n"
    vendor_workers;
  Printf.printf "Smart-Iceberg NLJP decomposition for the same query (cf. Listing 7):\n";
  let _, report = run_smart catalog q in
  (match report.Core.Runner.nljp_describe with
   | Some d -> print_string d
   | None -> print_endline "(NLJP not applied)");
  print_newline ()

(* ---- Ablations of the §7 design knobs (future work in the paper,
   implemented here as opt-in extensions) ---- *)

let ablate () =
  Printf.printf "=== Ablations: Q_B order, cache bound, memo strategy ===\n\n";
  let catalog = baseball_catalog ~rows:!rows () in
  let sql = Workload.Queries.skyband ~k:50 () in
  let q = Sqlfront.Parser.parse sql in
  (* Q_B exploration order (prune-only, so ordering is the only variable) *)
  Printf.printf "Q_B exploration order (skyband k=50, pruning only):\n";
  List.iter
    (fun (label, order) ->
      let nljp_config =
        { (nljp_cfg ()) with Core.Nljp.memo = false; outer_order = order }
      in
      let (_, rep), t =
        time (fun () ->
            Core.Runner.run ~tech:(Core.Optimizer.only `Pruning) ~nljp_config catalog q)
      in
      let stats = Option.get rep.Core.Runner.nljp_stats in
      Printf.printf "  %-22s %8.3fs  pruned %d / %d, inner evals %d\n%!" label t
        stats.Core.Nljp.pruned stats.Core.Nljp.outer_rows stats.Core.Nljp.inner_evals)
    [ ("storage order", `Default);
      ("binding col 0 asc", `Asc 0);
      ("binding col 0 desc", `Desc 0);
      ("auto (from p⪰)", `Auto) ];
  (* Cache bound *)
  Printf.printf "\nCache bound (skyband k=50, prune+memo, keep-first policy):\n";
  List.iter
    (fun cap ->
      let nljp_config =
        { (nljp_cfg ()) with Core.Nljp.max_cache_rows = cap }
      in
      let (_, rep), t = time (fun () -> Core.Runner.run ~nljp_config catalog q) in
      let stats = Option.get rep.Core.Runner.nljp_stats in
      Printf.printf "  cap %-12s %8.3fs  cache rows %d, pruned %d, memo hits %d\n%!"
        (match cap with None -> "unbounded" | Some c -> string_of_int c)
        t
        (stats.Core.Nljp.prune_cache_rows + stats.Core.Nljp.memo_cache_rows)
        stats.Core.Nljp.pruned stats.Core.Nljp.memo_hits)
    [ None; Some 1000; Some 100; Some 10; Some 0 ];
  (* Memoization strategy: NLJP cache vs Listing 8 static rewrite *)
  Printf.printf "\nMemoization strategy (memo only):\n";
  let (r1, _), t_nljp =
    time (fun () -> run_smart ~tech:(Core.Optimizer.only `Memo) catalog q)
  in
  let (r2, _), t_static =
    time (fun () ->
        run_smart ~tech:(Core.Optimizer.only `Memo)
          ~memo_strategy:`Static_rewrite catalog q)
  in
  check_equal "ablate/memo-strategy" r1 r2;
  Printf.printf "  NLJP cache    %8.3fs\n  static rewrite %7.3fs (Listing 8)\n\n" t_nljp
    t_static;
  (* Adaptive a-priori gate (first cut of the cost-based decisions): the
     pairs query at a low threshold has an unselective reducer that costs
     more than it saves — the gate should drop it. *)
  Printf.printf "Adaptive a-priori gate (pairs query, a-priori only):\n";
  List.iter
    (fun c ->
      let qp = Sqlfront.Parser.parse (Workload.Queries.pairs ~c ~k:50 ()) in
      let (_, rep_off), t_off =
        time (fun () -> run_smart ~tech:(Core.Optimizer.only `Apriori) catalog qp)
      in
      let (_, rep_on), t_on =
        time (fun () ->
            run_smart ~tech:(Core.Optimizer.only `Apriori) ~adaptive_apriori:true
              catalog qp)
      in
      let applied rep =
        List.exists (fun (_, r) -> r.Core.Runner.apriori <> []) rep.Core.Runner.cte_reports
      in
      Printf.printf
        "  c=%-3d gate off: %6.3fs (reducer %s)   gate on: %6.3fs (reducer %s)\n%!" c
        t_off
        (if applied rep_off then "applied" else "absent")
        t_on
        (if applied rep_on then "kept" else "dropped"))
    [ 2; 8 ]

(* ---- Fang et al. grouping-stage baseline (the paper's reference [9]) ---- *)

let fang () =
  Printf.printf
    "=== Fang et al. (VLDB'99) grouping-stage baselines over a join result ===\n";
  Printf.printf
    "(the historical iceberg algorithms the paper builds on: candidates from\n\
    \ probabilistic passes, exact counts only for candidates)\n\n";
  let catalog = Catalog.create () in
  let n =
    Workload.Basket.register catalog ~baskets:(!rows / 3) ~items:400 ~avg_size:6
      ~seed:2017
  in
  let tbl = Catalog.find catalog Workload.Basket.table_name in
  let base_rel =
    Relation.make
      (Schema.requalify "i1" tbl.Catalog.rel.Relation.schema)
      (Relation.rows tbl.Catalog.rel)
  in
  let joined =
    Ops.hash_join
      ~left_keys:[ Expr.col ~q:"i1" "bid" ]
      ~right_keys:[ Expr.col ~q:"i2" "bid" ]
      ~residual:Expr.tt base_rel
      (Relation.make
         (Schema.requalify "i2" tbl.Catalog.rel.Relation.schema)
         (Relation.rows tbl.Catalog.rel))
  in
  let item1 = Schema.index_of joined.Relation.schema ~q:"i1" "item" in
  let item2 = Schema.index_of joined.Relation.schema ~q:"i2" "item" in
  let threshold = max 5 (n / 200) in
  (* Size the bucket arrays so an average bucket stays well under the
     threshold — Fang et al.'s memory budget assumption. *)
  let config =
    {
      Fang.default_config with
      Fang.buckets = max 1024 (4 * Relation.cardinality joined / threshold);
    }
  in
  Printf.printf "basket rows %d, joined pairs %d, threshold %d, buckets %d\n\n" n
    (Relation.cardinality joined) threshold config.Fang.buckets;
  Printf.printf "%-12s %10s %12s %14s %12s\n" "algorithm" "time" "candidates"
    "false positives" "counters";
  let reference = ref None in
  List.iter
    (fun (name, alg) ->
      let (r, stats), t =
        time (fun () ->
            Fang.iceberg_count ~config ~algorithm:alg joined ~key:[ item1; item2 ]
              ~threshold)
      in
      (match !reference with
       | None -> reference := Some r
       | Some oracle -> check_equal ("fang/" ^ name) oracle r);
      Printf.printf "%-12s %9.3fs %12d %14d %12d\n%!" name t stats.Fang.candidates
        stats.Fang.false_positives stats.Fang.exact_counters)
    [ ("naive", Fang.Naive); ("coarse", Fang.Coarse_count);
      ("defer-count", Fang.Defer_count); ("multi-stage", Fang.Multi_stage) ];
  print_newline ()

(* ---- Bechamel micro-suite: one Test.make per figure ---- *)

(* Predicate-heavy expression over the baseball schema, used to compare the
   tree-walking interpreter against the staged compiler on identical rows. *)
let heavy_pred =
  let open Expr in
  let c n = col n in
  And
    ( Cmp (Gt, Binop (Add, c "b_h", Binop (Mul, c "b_hr", int 2)), int 60),
      Or
        ( Cmp (Le, c "b_2b", Binop (Mul, c "b_3b", int 3)),
          And (Cmp (Ge, c "b_bb", int 20), Not (Cmp (Eq, c "b_sb", int 0))) ) )

let compile_speedup catalog =
  let tbl = Catalog.find catalog Workload.Baseball.table_name in
  let rel = tbl.Catalog.rel in
  let schema = rel.Relation.schema in
  let reps = 40 in
  let interpreted () =
    let n = ref 0 in
    for _ = 1 to reps do
      Relation.iter (fun row -> if Expr.eval_bool schema row heavy_pred then incr n) rel
    done;
    !n
  in
  let compiled () =
    let p = Compile.pred schema heavy_pred in
    let n = ref 0 in
    for _ = 1 to reps do
      Relation.iter (fun row -> if p row then incr n) rel
    done;
    !n
  in
  let n1, t_interp = time interpreted in
  let n2, t_comp = time compiled in
  assert (n1 = n2);
  (t_interp, t_comp)

let micro () =
  Printf.printf "=== Bechamel micro-suite (one Test.make per figure, small inputs) ===\n\n";
  let open Bechamel in
  let small = max 100 (min !rows 800) in
  let bb = baseball_catalog ~rows:small () in
  let kv = unpivoted_catalog ~rows:(small / 2) () in
  let pred_schema =
    (Catalog.find bb Workload.Baseball.table_name).Catalog.rel.Relation.schema
  in
  let pred_rel = (Catalog.find bb Workload.Baseball.table_name).Catalog.rel in
  let compiled_pred = Compile.pred pred_schema heavy_pred in
  let smart catalog sql () =
    ignore (run_smart catalog (Sqlfront.Parser.parse sql))
  in
  let tests =
    [ Test.make ~name:"fig1_q1_all"
        (Staged.stage (smart bb (List.assoc "Q1" Workload.Queries.figure1)));
      Test.make ~name:"fig2_selectivity"
        (Staged.stage (smart bb (Workload.Queries.skyband ~k:10 ())));
      Test.make ~name:"fig3_cache_accounting"
        (Staged.stage (fun () ->
             let _, rep =
               run_smart bb
                 (Sqlfront.Parser.parse (Workload.Queries.skyband ~k:25 ()))
             in
             ignore (Core.Runner.cache_bytes rep)));
      Test.make ~name:"fig4_q1_no_ci"
        (Staged.stage (fun () ->
             let cfg = { (nljp_cfg ()) with Core.Nljp.cache_index = false } in
             ignore
               (Core.Runner.run ~nljp_config:cfg bb
                  (Sqlfront.Parser.parse (List.assoc "Q1" Workload.Queries.figure1)))));
      Test.make ~name:"fig5_skyband_k50"
        (Staged.stage (smart bb (Workload.Queries.skyband ~k:50 ())));
      Test.make ~name:"fig6_complex"
        (Staged.stage (smart kv (Workload.Queries.complex ~threshold:20)));
      Test.make ~name:"fig7_skyband_sized"
        (Staged.stage (smart bb (Workload.Queries.skyband ~k:25 ())));
      Test.make ~name:"fig8_complex_sized"
        (Staged.stage (smart kv (Workload.Queries.complex ~threshold:10)));
      Test.make ~name:"pairs_q4"
        (Staged.stage (smart bb (Workload.Queries.pairs ~c:3 ~k:20 ())));
      Test.make ~name:"expr_interpreted"
        (Staged.stage (fun () ->
             let n = ref 0 in
             Relation.iter
               (fun row ->
                 if Expr.eval_bool pred_schema row heavy_pred then incr n)
               pred_rel;
             ignore !n));
      Test.make ~name:"expr_compiled"
        (Staged.stage (fun () ->
             let n = ref 0 in
             Relation.iter (fun row -> if compiled_pred row then incr n) pred_rel;
             ignore !n)) ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            record ~technique:"micro" name (est /. 1e6);
            Printf.printf "%-24s %10.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "%-24s (no estimate)\n%!" name)
        analyzed)
    tests;
  let t_interp, t_comp = compile_speedup bb in
  Printf.printf
    "\nclosure compilation on the predicate-heavy scan: interpreter %.3fs, \
     compiled %.3fs — %.1fx speedup\n\n"
    t_interp t_comp (t_interp /. t_comp)

(* ---- parallel NLJP: sequential vs Domain-chunked ---- *)

let par () =
  Printf.printf
    "=== Parallel NLJP: sequential vs workers=%d (fig-scale workloads) ===\n"
    !par_workers;
  Printf.printf
    "(single-CPU hosts fall back to one domain per wave chunk; results are\n\
    \ checked bag-equal against sequential execution either way)\n\n";
  let bb = baseball_catalog ~rows:!rows () in
  let kv = unpivoted_catalog ~rows:(!rows / 2) () in
  Printf.printf "%-22s %12s %14s %10s %8s\n" "query" "sequential" "parallel"
    "speedup" "check";
  List.iter
    (fun (name, catalog, sql) ->
      let q = Sqlfront.Parser.parse sql in
      let (seq, _), seq_t, seq_c = time_obs (fun () -> run_smart catalog q) in
      let (par, _), par_t, par_c =
        time_obs (fun () -> run_smart ~workers:!par_workers catalog q)
      in
      let ok = Relation.equal_bag seq par in
      if not ok then
        Printf.printf "!! RESULT MISMATCH on par/%s — investigate\n%!" name;
      record ~technique:"all" ~counters:seq_c ("par_" ^ name) (seq_t *. 1000.);
      record ~technique:"all" ~workers:!par_workers ~counters:par_c
        ("par_" ^ name) (par_t *. 1000.);
      Printf.printf "%-22s %10.3fs %12.3fs %9.2fx %8s\n%!" name seq_t par_t
        (seq_t /. par_t)
        (if ok then "ok" else "MISMATCH"))
    [ ("skyband_k50", bb, Workload.Queries.skyband ~k:50 ());
      ("q1", bb, List.assoc "Q1" Workload.Queries.figure1);
      ("pairs_c3", bb, Workload.Queries.pairs ~c:3 ~k:50 ());
      ("complex", kv, Workload.Queries.complex ~threshold:(max 5 (!rows / 200))) ];
  print_newline ()

(* ---- columnar zone-map scan: row layout vs block skipping ---- *)

let col () =
  Printf.printf
    "=== Columnar scan: selective filter, zone-map block skipping vs rows ===\n";
  Printf.printf
    "(clustered id column, so consecutive blocks hold disjoint id ranges and\n\
    \ a selective range predicate refutes almost every block's zone map)\n\n";
  let n = max 1_000_000 !rows in
  let schema = Schema.of_names [ "id"; "grp"; "x" ] in
  let data =
    Array.init n (fun i ->
        [| Value.Int i; Value.Int (i mod 97);
           Value.Float (float_of_int (i * 7 mod 1000) /. 10.) |])
  in
  let row_rel = Relation.make schema data in
  let col_rel, build_t = time (fun () -> Relation.to_layout `Column row_rel) in
  (* Selective: an id window covering ~half a block, so the zone maps
     refute all but 1-2 blocks and the output stays small (a large output
     makes both layouts GC-bound on row building, hiding the scan cost). *)
  let lo = n * 9 / 10 in
  let hi = lo + (Column.Cstore.default_block_size / 2) in
  let pred =
    Expr.(
      And
        ( And (Cmp (Ge, col "id", int lo), Cmp (Lt, col "id", int hi)),
          Cmp (Lt, col "grp", int 50) ))
  in
  let reps = 5 in
  let scan rel () =
    let last = ref (Relation.empty schema) in
    for _ = 1 to reps do
      last := Ops.select pred rel
    done;
    !last
  in
  let r_row, t_row, row_c = time_obs (scan row_rel) in
  let r_col, t_col, col_c = time_obs (scan col_rel) in
  let counter_of c name = Option.value (List.assoc_opt name c) ~default:0 in
  let skipped = counter_of col_c "colscan.blocks_skipped"
  and scanned = counter_of col_c "colscan.blocks_scanned" in
  check_equal "col/differential" r_row r_col;
  Printf.printf
    "rows=%d (%d blocks, built in %.2fs), predicate keeps %d rows, %d reps\n"
    n
    (Column.Cstore.nblocks (Relation.cstore col_rel))
    build_t (Relation.cardinality r_col) reps;
  Printf.printf "row layout    %8.3fs\n" t_row;
  Printf.printf "column layout %8.3fs  (blocks skipped=%d scanned=%d per total)\n"
    t_col skipped scanned;
  Printf.printf "speedup %.1fx; footprint row=%d kB column=%d kB\n\n"
    (t_row /. t_col)
    (Relation.approx_bytes row_rel / 1024)
    (Relation.approx_bytes col_rel / 1024);
  record ~technique:"rowscan" ~counters:row_c "colscan_selective"
    (t_row *. 1000.);
  record ~technique:"zonemap"
    ~counters:(("footprint_bytes", Relation.approx_bytes col_rel) :: col_c)
    "colscan_selective" (t_col *. 1000.);
  if skipped = 0 then
    Printf.printf "!! expected blocks to be skipped — investigate\n%!";
  if t_col *. 2. > t_row then
    Printf.printf
      "!! zone-map speedup below 2x (%.1fx) — investigate\n%!"
      (t_row /. t_col);
  (* End-to-end: the same optimized workload queries over row- vs
     column-primary base tables (fresh catalog per layout, same seed). *)
  Printf.printf
    "\n--- end-to-end layouts (optimizer on, fresh catalog per run) ---\n";
  Printf.printf "%-18s %10s %10s %8s %8s\n" "query" "row" "column" "ratio" "check";
  let saved_layout = !layout in
  let basket_catalog () =
    let catalog = Catalog.create () in
    ignore
      (Workload.Basket.register catalog ~baskets:(!rows / 3) ~items:400
         ~avg_size:6 ~seed:2017);
    if !layout = `Column then Catalog.set_all_layouts catalog `Column;
    catalog
  in
  List.iter
    (fun (name, build, sql) ->
      let q = Sqlfront.Parser.parse sql in
      let timed l =
        layout := l;
        let catalog = build () in
        let (r, _), t, c = time_obs (fun () -> run_smart catalog q) in
        record ~technique:"all" ~counters:c ("layout_" ^ name) (t *. 1000.);
        (r, t)
      in
      let r_row, t_r = timed `Row in
      let r_col, t_c = timed `Column in
      layout := saved_layout;
      let ok = Relation.equal_bag r_row r_col in
      if not ok then
        Printf.printf "!! RESULT MISMATCH on layout/%s — investigate\n%!" name;
      Printf.printf "%-18s %9.3fs %9.3fs %7.2fx %8s\n%!" name t_r t_c
        (t_r /. t_c)
        (if ok then "ok" else "MISMATCH"))
    [ ("baseball_q1", (fun () -> baseball_catalog ~rows:!rows ()),
       List.assoc "Q1" Workload.Queries.figure1);
      ("baseball_pairs", (fun () -> baseball_catalog ~rows:!rows ()),
       Workload.Queries.pairs ~c:3 ~k:50 ());
      ("basket_listing1", basket_catalog,
       Workload.Queries.listing1 ~threshold:(max 5 (!rows / 120))) ]

(* ---- vectorized NLJP inner loop: row-at-a-time vs typed kernels ---- *)

let vec () =
  Printf.printf
    "=== Vectorized NLJP inner loop: zone-map skipping + typed kernels ===\n";
  Printf.printf
    "(clustered inner key; each binding is a selective [lo, hi] window whose\n\
    \ parameterized zone probes refute most blocks before any row is touched;\n\
    \ surviving blocks aggregate through unboxed COUNT/SUM kernels)\n\n";
  let n = max 50_000 !rows in
  let ev_schema = Schema.of_names [ "k"; "x" ] in
  let ev_rows =
    Array.init n (fun i ->
        [| Value.Int i; Value.Float (float_of_int (i * 7 mod 1000) /. 10.) |])
  in
  let width = 1500 in
  let probe_schema = Schema.of_names [ "id"; "lo"; "hi" ] in
  let probe_rows =
    (* 120 distinct windows, each bound twice: the repeats land as memo hits
       in every leg, so the legs differ only in the inner loop itself. *)
    Array.init 240 (fun j ->
        let lo = j / 2 * 6131 mod (n - width) in
        [| Value.Int j; Value.Int lo; Value.Int (lo + width) |])
  in
  let mk lay =
    let catalog = Catalog.create () in
    Catalog.add_table catalog "ev" (Relation.make ev_schema ev_rows);
    Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
      (Relation.make probe_schema probe_rows);
    if lay = `Column then Catalog.set_all_layouts catalog `Column;
    catalog
  in
  let sql =
    "SELECT L.id, COUNT(*), SUM(R.x) FROM probe L, ev R WHERE R.k >= L.lo \
     AND R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= 1"
  in
  let q = Sqlfront.Parser.parse sql in
  let reps = 5 in
  let saved_layout = !layout in
  let leg lay vector bt =
    layout := lay;
    let catalog = mk lay in
    let cfg =
      { (nljp_cfg ()) with Core.Nljp.vector = vector; inner_index = bt }
    in
    let out = ref None in
    let (), t, c =
      time_obs (fun () ->
          for _ = 1 to reps do
            out := Some (Core.Runner.run ~nljp_config:cfg catalog q)
          done)
    in
    let r, rep = Option.get !out in
    (r, rep, t /. float_of_int reps, c)
  in
  let r_rowbt, _, t_rowbt, _ = leg `Row true true in
  let r_colbt, _, t_colbt, colbt_c = leg `Column false true in
  let r_scan, _, t_scan, scan_c = leg `Column false false in
  let r_vec, rep_vec, t_vec, vec_c = leg `Column true true in
  check_equal "vec/col+bt" r_rowbt r_colbt;
  check_equal "vec/col+scan" r_rowbt r_scan;
  check_equal "vec/col+vec" r_rowbt r_vec;
  let vector_engaged, vevals, skipped, scanned =
    match rep_vec.Core.Runner.nljp_stats with
    | Some s ->
      ( s.Core.Nljp.vector_on, s.Core.Nljp.vector_evals,
        s.Core.Nljp.inner_blocks_skipped, s.Core.Nljp.inner_blocks_scanned )
    | None -> (false, 0, 0, 0)
  in
  Printf.printf
    "inner rows=%d, outer bindings=%d (120 distinct windows of %d keys), %d reps\n\n"
    n (Array.length probe_rows) width reps;
  Printf.printf "%-34s %10s\n" "inner path" "per run";
  Printf.printf "%-34s %8.3fs\n" "row layout, sorted index" t_rowbt;
  Printf.printf "%-34s %8.3fs\n" "column, row-at-a-time + index" t_colbt;
  Printf.printf "%-34s %8.3fs\n" "column, row-at-a-time full scan" t_scan;
  Printf.printf "%-34s %8.3fs  (evals=%d, blocks skipped=%d scanned=%d)\n\n"
    "column, vectorized kernels" t_vec vevals skipped scanned;
  Printf.printf
    "vectorized vs row-at-a-time scan %.1fx; vs sorted-index row path %.1fx\n\n"
    (t_scan /. t_vec) (t_colbt /. t_vec);
  record ~technique:"rowpath" ~counters:scan_c "vec_inner" (t_scan *. 1000.);
  record ~technique:"rowpath+bt" ~counters:colbt_c "vec_inner"
    (t_colbt *. 1000.);
  record ~technique:"vector" ~counters:vec_c "vec_inner" (t_vec *. 1000.);
  layout := saved_layout;
  if not vector_engaged then
    Printf.printf "!! vectorized path did not engage — investigate\n%!";
  if skipped = 0 then
    Printf.printf
      "!! expected per-binding zone probes to skip blocks — investigate\n%!";
  if t_scan < 3. *. t_vec then
    Printf.printf
      "!! vectorized speedup over the row-at-a-time inner loop below 3x \
       (%.1fx) — investigate\n%!"
      (t_scan /. t_vec)

(* ---- compressed columnar storage: the .sic disk tier ---- *)

(* --cache-mb caps the block cache for the capped leg of the sic target
   (default: about a quarter of the decoded dataset, so eviction pressure
   is guaranteed). *)
let cache_mb_opt : int option ref = ref None

(* Synthetic table tuned so every codec engages: [id] clustered (narrow
   FOR deltas), [grp]/[score] small ranges (bit-packing), [tag] in long
   runs (RLE over dict codes), [x] raw floats, plus a sprinkle of NULLs. *)
let sic_table n =
  let tags = [| "alpha"; "beta"; "gamma"; "delta" |] in
  let schema = Schema.of_names [ "id"; "grp"; "tag"; "x"; "score" ] in
  let data =
    Array.init n (fun i ->
        [| Value.Int i;
           (if i mod 101 = 0 then Value.Null else Value.Int (i mod 97));
           Value.Str tags.((i / 1000) mod 4);
           Value.Float (float_of_int (i * 7 mod 1000) /. 10.);
           Value.Int (i * 13 mod 1000) |])
  in
  Relation.make schema data

let sic_queries n =
  let lo = n * 9 / 10 in
  let hi = lo + (Column.Cstore.default_block_size / 2) in
  [ ( "filter_int",
      Printf.sprintf "SELECT id, score FROM ev WHERE id >= %d AND id < %d" lo hi );
    ("filter_str", "SELECT COUNT(*) FROM ev WHERE tag = 'beta' AND id < 2000");
    ( "agg_global",
      "SELECT COUNT(*), SUM(score), MIN(score), MAX(score), AVG(x) FROM ev" ) ]

let sic_bench () =
  Printf.printf
    "=== Compressed columnar storage: .sic cold start, compression ratio, \
     capped-cache disk tier ===\n\n";
  let n = max 200_000 !rows in
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "si-bench-%d.%s" (Unix.getpid ()) name)
  in
  let csv_path = tmp "csv" and sic_path = tmp "sic" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ csv_path; sic_path ];
      Column.Blockcache.set_capacity_mb Column.Blockcache.default_capacity_mb)
    (fun () ->
      let row_rel = sic_table n in
      Csv.save csv_path row_rel;
      (* Cold start: parse + layout + zone maps from CSV vs one decode pass
         over the .sic blocks (dictionaries, zone maps and Blooms ride in
         the footer). *)
      let col_rel, csv_load_t = time (fun () -> Csv.load ~layout:`Column csv_path) in
      Sic.save sic_path (Relation.to_layout `Column col_rel);
      let resident, sic_load_t, sic_load_c =
        time_obs (fun () -> Sic.load ~mode:`Resident sic_path)
      in
      (* The CLI and server open .sic paged: footer only, blocks on demand.
         That open is what replaces the CSV parse on the serving path. *)
      let _, sic_open_t = time (fun () -> Sic.load ~mode:`Paged sic_path) in
      check_equal "sic/resident" col_rel resident;
      let csv_bytes = (Unix.stat csv_path).Unix.st_size in
      let sic_bytes = (Unix.stat sic_path).Unix.st_size in
      let decoded_bytes = Relation.approx_bytes resident in
      Printf.printf "rows=%d\n" n;
      Printf.printf
        "cold start: CSV parse %8.3fs, .sic paged open %8.3fs (%.0fx), .sic \
         full decode %8.3fs (%.1fx)\n"
        csv_load_t sic_open_t
        (csv_load_t /. Float.max 1e-6 sic_open_t)
        sic_load_t (csv_load_t /. sic_load_t);
      Printf.printf
        "size: csv %d kB, .sic %d kB, decoded %d kB  (%.2fx vs csv, %.2fx vs \
         decoded)\n\n"
        (csv_bytes / 1024) (sic_bytes / 1024) (decoded_bytes / 1024)
        (float_of_int csv_bytes /. float_of_int sic_bytes)
        (float_of_int decoded_bytes /. float_of_int sic_bytes);
      record ~technique:"csv" "sic_cold_start" (csv_load_t *. 1000.)
        ~load_ms:(csv_load_t *. 1000.);
      record ~technique:"sic_paged" "sic_cold_start" (sic_open_t *. 1000.)
        ~load_ms:(sic_open_t *. 1000.);
      record ~technique:"sic_resident" ~counters:sic_load_c "sic_cold_start"
        (sic_load_t *. 1000.) ~load_ms:(sic_load_t *. 1000.);
      record ~technique:"sic"
        ~counters:
          [ ("csv_bytes", csv_bytes); ("sic_bytes", sic_bytes);
            ("decoded_bytes", decoded_bytes) ]
        "sic_compression" 0.;
      if csv_load_t < 5. *. sic_open_t then
        Printf.printf "!! .sic cold start below 5x faster than CSV — investigate\n%!";
      (* Paged execution, uncapped vs a cache capped well below the decoded
         dataset: same answers, bounded resident memory, evictions > 0. *)
      let counter_of c name = Option.value (List.assoc_opt name c) ~default:0 in
      let mk_catalog rel =
        let catalog = Catalog.create () in
        Catalog.add_table catalog "ev" rel;
        catalog
      in
      let resident_cat = mk_catalog resident in
      let queries = List.map (fun (qn, s) -> (qn, Sqlfront.Parser.parse s)) (sic_queries n) in
      let run_leg leg cap_mb =
        Column.Blockcache.set_capacity_mb cap_mb;
        let paged = Sic.load ~mode:`Paged sic_path in
        let catalog = mk_catalog paged in
        List.map
          (fun (qn, q) ->
            let (r, _), t, c = time_obs (fun () -> run_smart catalog q) in
            record ~technique:leg ~counters:c ("sic_" ^ qn) (t *. 1000.);
            Printf.printf
              "%-12s %-10s %8.3fs  direct=%d decoded=%d hits=%d misses=%d \
               evictions=%d\n%!"
              qn leg t
              (counter_of c "sic.blocks_direct")
              (counter_of c "sic.blocks_decoded")
              (counter_of c "sic.cache_hits")
              (counter_of c "sic.cache_misses")
              (counter_of c "sic.cache_evictions");
            (qn, r, c))
          queries
      in
      Printf.printf "%-12s %-10s %9s\n" "query" "cache" "time";
      let uncapped = run_leg "uncapped" (max 64 Column.Blockcache.default_capacity_mb) in
      let cap_mb =
        match !cache_mb_opt with
        | Some m -> max 1 m
        | None -> max 1 (decoded_bytes / 4 / 1_048_576)
      in
      Printf.printf "(capped leg: --cache-mb %d, decoded dataset %d MB)\n%!" cap_mb
        (decoded_bytes / 1_048_576);
      let capped = run_leg "capped" cap_mb in
      List.iter2
        (fun (qn, r_un, _) (_, r_cap, c_cap) ->
          (* Ground truth: the fully decoded resident relation. *)
          let oracle = run_base resident_cat (List.assoc qn queries) in
          check_equal ("sic/" ^ qn ^ "/uncapped") oracle r_un;
          check_equal ("sic/" ^ qn ^ "/capped") oracle r_cap;
          ignore c_cap)
        uncapped capped;
      let evictions =
        List.fold_left
          (fun acc (_, _, c) -> acc + counter_of c "sic.cache_evictions")
          0 capped
      in
      let direct =
        List.fold_left
          (fun acc (_, _, c) -> acc + counter_of c "sic.blocks_direct")
          0 (uncapped @ capped)
      in
      Printf.printf
        "\ncapped leg evictions=%d (cap %d MB vs %d MB decoded); blocks_direct \
         total=%d; peak rss %.0f MB\n\n"
        evictions cap_mb (decoded_bytes / 1_048_576) direct (max_rss_mb ());
      if evictions = 0 then
        Printf.printf "!! expected cache evictions under the capped leg — investigate\n%!";
      if direct = 0 then
        Printf.printf "!! expected compressed-execution blocks_direct > 0 — investigate\n%!")

(* ---- persistent benchmark-regression harness ----

   `bench harness` runs a pinned suite (scans, the vectorized inner loop,
   end-to-end smart vs baseline, the --analyze overhead pair) with a warmup
   plus repeated measurements and writes medians + IQR, counters and run
   metadata to a JSON file (BENCH_PR9.json by default; committed at the repo
   root as the regression baseline).  `bench diff OLD.json NEW.json`
   compares two such files with a noise-aware threshold and exits non-zero
   on a regression — the CI gate.

   Absolute times are machine-dependent, so every suite includes `__calib`,
   a fixed CPU-spin workload with no inputs; diff normalizes all medians by
   the ratio of the two `__calib` medians before comparing, turning the
   check into "slower on the same machine-relative scale". *)

let quick = ref false

let calib_spin () =
  (* Pure integer arithmetic, no allocation: proportional to CPU speed and
     nothing else, so it anchors cross-machine normalization in [diff]. *)
  let acc = ref 0 in
  for i = 1 to 20_000_000 do
    acc := (!acc + (i * i)) land 0xFFFFFF
  done;
  ignore (Sys.opaque_identity !acc)

type hbench = {
  h_name : string;
  h_reps : int;
  h_median : float;  (* ms *)
  h_p25 : float;
  h_p75 : float;
  h_load_ms : float option;  (* data-load time behind the bench; informational *)
  h_counters : (string * int) list;  (* from the last repetition *)
  h_max_rss_mb : float;  (* process peak RSS after the last repetition *)
}

let measure_bench ?load_ms ~reps name f =
  (* Level the heap between benches: without this, each leg runs on
     whatever garbage its predecessors left, which skews A/B pairs. *)
  Gc.compact ();
  ignore (f ());
  (* warmup *)
  let samples = ref [] and counters = ref [] in
  for _ = 1 to reps do
    let _, t, c = time_obs f in
    samples := (t *. 1000.) :: !samples;
    counters := c
  done;
  let s = Array.of_list (List.sort compare !samples) in
  let pct p =
    let idx = p *. float_of_int (Array.length s - 1) in
    let lo = int_of_float (floor idx) and hi = int_of_float (ceil idx) in
    let frac = idx -. floor idx in
    (s.(lo) *. (1. -. frac)) +. (s.(hi) *. frac)
  in
  Printf.printf "%-22s median %10.3f ms   IQR [%.3f, %.3f]\n%!" name (pct 0.5)
    (pct 0.25) (pct 0.75);
  {
    h_name = name;
    h_reps = reps;
    h_median = pct 0.5;
    h_p25 = pct 0.25;
    h_p75 = pct 0.75;
    h_load_ms = load_ms;
    h_counters = !counters;
    h_max_rss_mb = max_rss_mb ();
  }

let harness () =
  let reps = if !quick then 5 else 7 in
  let n_rows = if !quick then min !rows 2000 else !rows in
  Printf.printf
    "=== Benchmark-regression harness: pinned suite, 1 warmup + %d reps \
     (rows=%d%s) ===\n\n"
    reps n_rows
    (if !quick then ", --quick" else "");
  let measure = measure_bench ~reps in
  (* Scan pair: zone-map block skipping vs the row layout (cf. the col
     target, scaled down so the harness stays minutes-cheap). *)
  let scan_n = if !quick then 200_000 else 1_000_000 in
  let scan_schema = Schema.of_names [ "id"; "grp"; "x" ] in
  let scan_data =
    Array.init scan_n (fun i ->
        [| Value.Int i; Value.Int (i mod 97);
           Value.Float (float_of_int (i * 7 mod 1000) /. 10.) |])
  in
  let scan_row_rel = Relation.make scan_schema scan_data in
  let scan_col_rel = Relation.to_layout `Column scan_row_rel in
  let lo = scan_n * 9 / 10 in
  let hi = lo + (Column.Cstore.default_block_size / 2) in
  let scan_pred =
    Expr.(
      And
        ( And (Cmp (Ge, col "id", int lo), Cmp (Lt, col "id", int hi)),
          Cmp (Lt, col "grp", int 50) ))
  in
  (* Vectorized inner loop over a clustered key (cf. the vec target). *)
  let vec_n = if !quick then 20_000 else 50_000 in
  let vec_catalog =
    let catalog = Catalog.create () in
    Catalog.add_table catalog "ev"
      (Relation.make
         (Schema.of_names [ "k"; "x" ])
         (Array.init vec_n (fun i ->
              [| Value.Int i; Value.Float (float_of_int (i * 7 mod 1000) /. 10.) |])));
    Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
      (Relation.make
         (Schema.of_names [ "id"; "lo"; "hi" ])
         (Array.init 240 (fun j ->
              let l = j / 2 * 6131 mod (vec_n - 1500) in
              [| Value.Int j; Value.Int l; Value.Int (l + 1500) |])));
    Catalog.set_all_layouts catalog `Column;
    catalog
  in
  let vec_q =
    Sqlfront.Parser.parse
      "SELECT L.id, COUNT(*), SUM(R.x) FROM probe L, ev R WHERE R.k >= L.lo \
       AND R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= 1"
  in
  let vec_cfg =
    { Core.Nljp.default_config with Core.Nljp.vector = true; inner_index = true }
  in
  (* End-to-end legs on the synthetic workloads.  Catalog construction is
     timed as each leg's load cost (synthetic generation + index and layout
     build — the stand-in for CSV parse), reported informationally. *)
  let bb, bb_load = time (fun () -> baseball_catalog ~rows:n_rows ()) in
  let kv, kv_load = time (fun () -> unpivoted_catalog ~rows:(n_rows / 2) ()) in
  let bb_load = bb_load *. 1000. and kv_load = kv_load *. 1000. in
  let q1 = Sqlfront.Parser.parse (List.assoc "Q1" Workload.Queries.figure1) in
  let q_cplx =
    Sqlfront.Parser.parse
      (Workload.Queries.complex ~threshold:(max 5 (n_rows / 200)))
  in
  (* Predicate-transfer pair: the filtered complex query, transfer forced on
     vs off from the same catalog.  Sized so the four-way input clears the
     gate's 4096-row floor even under --quick. *)
  let kv_tr, kv_tr_load =
    time (fun () -> unpivoted_catalog ~rows:(max 1100 (n_rows / 2)) ())
  in
  let kv_tr_load = kv_tr_load *. 1000. in
  let q_tr =
    Sqlfront.Parser.parse (Workload.Queries.complex_filtered ~threshold:3 ())
  in
  (* Sequential lets: a list literal would evaluate right-to-left, running
     each --analyze leg before its plain pair on a smaller heap. *)
  let b_calib = measure "__calib" calib_spin in
  let b_scan_row =
    measure "scan_row" (fun () -> ignore (Ops.select scan_pred scan_row_rel))
  in
  let b_scan_zm =
    measure "scan_zonemap" (fun () -> ignore (Ops.select scan_pred scan_col_rel))
  in
  (* Disk tier: .sic cold load, then paged execution under a block cache
     capped well below the decoded dataset, so every repetition exercises
     eviction (sic.cache_evictions lands in the leg's counters). *)
  let sic_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "si-harness-%d.sic" (Unix.getpid ()))
  in
  Sic.save sic_path scan_col_rel;
  let b_sic_load =
    measure "sic_load_resident" (fun () ->
        ignore (Sic.load ~mode:`Resident sic_path))
  in
  Column.Blockcache.set_capacity_mb
    (max 2 (Relation.approx_bytes scan_col_rel / 4 / 1_048_576));
  let sic_paged = Sic.load ~mode:`Paged sic_path in
  let b_sic_scan =
    measure "sic_scan_paged" (fun () -> ignore (Ops.select scan_pred sic_paged))
  in
  let sic_cat =
    let c = Catalog.create () in
    Catalog.add_table c "ev" sic_paged;
    c
  in
  let sic_agg_q =
    Sqlfront.Parser.parse
      "SELECT COUNT(*), SUM(grp), MIN(id), MAX(id), AVG(x) FROM ev"
  in
  let b_sic_agg =
    measure "sic_agg_direct" (fun () -> ignore (run_base sic_cat sic_agg_q))
  in
  Column.Blockcache.set_capacity_mb Column.Blockcache.default_capacity_mb;
  (try Sys.remove sic_path with Sys_error _ -> ());
  let b_vec =
    measure "vec_inner" (fun () ->
        ignore (Core.Runner.run ~nljp_config:vec_cfg vec_catalog vec_q))
  in
  let b_q1_base =
    measure ~load_ms:bb_load "e2e_q1_base" (fun () -> ignore (run_base bb q1))
  in
  let b_q1_smart =
    measure ~load_ms:bb_load "e2e_q1_smart" (fun () -> ignore (run_smart bb q1))
  in
  let b_q1_analyze =
    measure ~load_ms:bb_load "e2e_q1_analyze" (fun () ->
        ignore (Core.Analyze.run ~nljp_config:(nljp_cfg ()) bb q1))
  in
  let b_cplx_smart =
    measure ~load_ms:kv_load "e2e_complex_smart" (fun () ->
        ignore (run_smart kv q_cplx))
  in
  let b_cplx_analyze =
    measure ~load_ms:kv_load "e2e_complex_analyze" (fun () ->
        ignore (Core.Analyze.run ~nljp_config:(nljp_cfg ()) kv q_cplx))
  in
  let b_tr_on =
    measure ~load_ms:kv_tr_load "e2e_transfer_on" (fun () ->
        ignore
          (Core.Runner.run ~nljp_config:(nljp_cfg ()) ~transfer:true kv_tr q_tr))
  in
  let b_tr_off =
    measure ~load_ms:kv_tr_load "e2e_transfer_off" (fun () ->
        ignore
          (Core.Runner.run ~nljp_config:(nljp_cfg ()) ~transfer:false kv_tr q_tr))
  in
  let benches =
    [
      b_calib; b_scan_row; b_scan_zm; b_sic_load; b_sic_scan; b_sic_agg;
      b_vec; b_q1_base; b_q1_smart; b_q1_analyze; b_cplx_smart;
      b_cplx_analyze; b_tr_on; b_tr_off;
    ]
  in
  let find n = List.find (fun h -> h.h_name = n) benches in
  let overhead name plain analyzed =
    let p = find plain and a = find analyzed in
    Printf.printf
      "--analyze overhead on %s: %.1f%% (plain %.3f ms, analyze %.3f ms)\n" name
      (100. *. ((a.h_median /. p.h_median) -. 1.))
      p.h_median a.h_median
  in
  print_newline ();
  overhead "Q1" "e2e_q1_smart" "e2e_q1_analyze";
  overhead "complex" "e2e_complex_smart" "e2e_complex_analyze";
  Printf.printf
    "predicate transfer on the filtered complex query: %.2fx (off %.3f ms, \
     on %.3f ms)\n"
    (b_tr_off.h_median /. Float.max 1e-9 b_tr_on.h_median)
    b_tr_off.h_median b_tr_on.h_median;
  let bench_json h =
    Obs.Json.Obj
      ([
         ("name", Obs.Json.Str h.h_name);
         ("reps", Obs.Json.Num (float_of_int h.h_reps));
         ("median_ms", Obs.Json.Num h.h_median);
         ("p25_ms", Obs.Json.Num h.h_p25);
         ("p75_ms", Obs.Json.Num h.h_p75);
       ]
      @ (match h.h_load_ms with
         | Some l -> [ ("load_ms", Obs.Json.Num l) ]
         | None -> [])
      @ [
          ("max_rss_mb", Obs.Json.Num h.h_max_rss_mb);
          ("counters", counters_json h.h_counters);
        ])
  in
  let doc =
    Obs.Json.Obj
      [
        ( "metadata",
          Obs.Json.Obj
            [
              ("schema", Obs.Json.Str "smart-iceberg-bench-harness-v1");
              ("git_sha", Obs.Json.Str (Lazy.force git_sha));
              ("workers", Obs.Json.Num (float_of_int !par_workers));
              ("layout", Obs.Json.Str (layout_name ()));
              ("si_vector", Obs.Json.Bool !vector_on);
              ("si_transfer", Obs.Json.Bool (transfer_enabled ()));
              ("ocaml", Obs.Json.Str Sys.ocaml_version);
              ("rows", Obs.Json.Num (float_of_int n_rows));
              ("quick", Obs.Json.Bool !quick);
            ] );
        ("benches", Obs.Json.Arr (List.map bench_json benches));
      ]
  in
  let path = Option.value !json_path ~default:"BENCH_PR9.json" in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote harness baseline to %s\n" path;
  (* The harness owns its output file; don't also dump the generic rows. *)
  json_path := None

(* `bench diff OLD.json NEW.json [--threshold R]` — the regression gate. *)

let jfield k = function Obs.Json.Obj kvs -> List.assoc_opt k kvs | _ -> None
let jnum k j = match jfield k j with Some (Obs.Json.Num n) -> Some n | _ -> None
let jstr k j = match jfield k j with Some (Obs.Json.Str s) -> Some s | _ -> None

let load_harness path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Obs.Json.of_string s

let diff_cmd args =
  let threshold = ref 1.25 in
  let files = ref [] in
  let rec go = function
    | [] -> ()
    | "--threshold" :: x :: rest ->
      threshold := float_of_string x;
      go rest
    | f :: rest ->
      files := f :: !files;
      go rest
  in
  go args;
  match List.rev !files with
  | [ old_path; new_path ] ->
    let old_doc = load_harness old_path and new_doc = load_harness new_path in
    let describe doc =
      match jfield "metadata" doc with
      | Some m ->
        Printf.sprintf "sha=%s layout=%s rows=%.0f quick=%b"
          (Option.value (jstr "git_sha" m) ~default:"?")
          (Option.value (jstr "layout" m) ~default:"?")
          (Option.value (jnum "rows" m) ~default:0.)
          (match jfield "quick" m with Some (Obs.Json.Bool b) -> b | _ -> false)
      | None -> "(no metadata)"
    in
    Printf.printf "old %s: %s\nnew %s: %s\n\n" old_path (describe old_doc)
      new_path (describe new_doc);
    let benches doc =
      match jfield "benches" doc with
      | Some (Obs.Json.Arr l) ->
        List.filter_map
          (fun b -> Option.map (fun n -> (n, b)) (jstr "name" b))
          l
      | _ -> failwith "not a harness file (missing \"benches\")"
    in
    let old_b = benches old_doc and new_b = benches new_doc in
    (* Normalize by the CPU-spin anchor when both files carry it: scale the
       new measurements into the old file's machine units. *)
    let calib =
      match
        ( Option.bind (List.assoc_opt "__calib" old_b) (jnum "median_ms"),
          Option.bind (List.assoc_opt "__calib" new_b) (jnum "median_ms") )
      with
      | Some o, Some n when o > 0. && n > 0. -> n /. o
      | _ -> 1.0
    in
    if calib <> 1.0 then
      Printf.printf "normalizing by __calib: new machine runs %.2fx the old\n\n"
        calib;
    Printf.printf "%-22s %12s %12s %8s  %-20s %s\n" "bench" "old ms"
      "new ms(norm)" "ratio" "verdict" "load (info)";
    let regressions = ref 0 in
    List.iter
      (fun (name, nb) ->
        if name <> "__calib" then
          match List.assoc_opt name old_b with
          | None ->
            Printf.printf "%-22s %12s %12s %8s  new bench\n" name "-" "-" "-"
          | Some ob ->
            let v k j = Option.value (jnum k j) ~default:0. in
            let old_med = v "median_ms" ob and old_p75 = v "p75_ms" ob in
            let new_med = v "median_ms" nb /. calib
            and new_p25 = v "p25_ms" nb /. calib in
            let raw_ratio =
              if old_med > 0. then v "median_ms" nb /. old_med else 1.
            in
            let ratio = if old_med > 0. then new_med /. old_med else 1. in
            (* Noise-aware: only a regression when the IQRs separate too —
               the new 25th percentile clears the old 75th — and both the
               raw and the calib-normalized ratio exceed the threshold.
               The anchor is a CPU spin; frequency scaling can move it
               without moving the allocation-heavy benches, and requiring
               both ratios keeps that from minting false regressions in
               either direction. *)
            let regressed =
              Float.min ratio raw_ratio > !threshold && new_p25 > old_p75
            in
            let verdict =
              if regressed then begin
                incr regressions;
                "REGRESSION"
              end
              else if Float.min ratio raw_ratio > !threshold then
                "noisy (IQRs overlap)"
              else if Float.max ratio raw_ratio > !threshold then
                "noisy (calib disagrees)"
              else if ratio < 1. /. !threshold then "improved"
              else "ok"
            in
            (* Load time is reported but never gates: data generation / CSV
               parse cost is environmental, not a query-engine regression. *)
            let load_info =
              match (jnum "load_ms" ob, jnum "load_ms" nb) with
              | Some o, Some n -> Printf.sprintf "%.1f -> %.1f ms" o n
              | None, Some n -> Printf.sprintf "- -> %.1f ms" n
              | _ -> ""
            in
            (* Peak RSS rides along the same way: informational only. *)
            let load_info =
              match (jnum "max_rss_mb" ob, jnum "max_rss_mb" nb) with
              | Some o, Some n ->
                Printf.sprintf "%s%srss %.0f -> %.0f MB" load_info
                  (if load_info = "" then "" else ", ")
                  o n
              | None, Some n ->
                Printf.sprintf "%s%srss %.0f MB" load_info
                  (if load_info = "" then "" else ", ")
                  n
              | _ -> load_info
            in
            Printf.printf "%-22s %12.3f %12.3f %7.2fx  %-20s %s\n" name old_med
              new_med ratio verdict load_info)
      new_b;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name new_b) then
          Printf.printf "%-22s bench disappeared from the new file\n" name)
      old_b;
    if !regressions > 0 then begin
      Printf.printf
        "\n%d regression(s) above %.2fx the %s baseline\n" !regressions !threshold
        old_path;
      1
    end
    else begin
      Printf.printf "\nno regressions above %.2fx\n" !threshold;
      0
    end
  | _ ->
    prerr_endline "usage: bench diff OLD.json NEW.json [--threshold R]";
    2

(* ---- query server: concurrent sessions, plan + result caches ---- *)

let serve_bench () =
  Printf.printf "=== Query server: concurrent sessions, plan + result caches ===\n\n";
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "si-bench-%d.sock" (Unix.getpid ()))
  in
  let catalog, load_t = time (fun () -> baseball_catalog ~rows:!rows ()) in
  let load_ms = load_t *. 1000. in
  let config =
    {
      Serve.Server.listen = `Unix sock;
      pool = 2;
      queue_cap = 256;
      plan_cache_cap = 64;
      result_cache_cap = 256;
      max_rows = None;
      maintain = true;
      metrics_addr = None;
      slow_ms = None;
      slow_log = None;
      trace_sample = 0.;
    }
  in
  let srv = Serve.Server.start ~config [ (!layout, catalog) ] in
  let hot =
    [
      List.assoc "Q1" Workload.Queries.figure1;
      Workload.Queries.pairs ~c:3 ~k:50 ();
      Workload.Queries.skyband ~k:50 ();
    ]
  in
  (* distinct HAVING thresholds: distinct normalized text, so each fresh
     query is a plan-cache miss that must run the full Listing 9 pipeline *)
  let fresh i = Workload.Queries.skyband ~k:(60 + i) () in
  let timed_query cl sql =
    let t0 = Unix.gettimeofday () in
    let r = Serve.Client.query cl sql in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  (* cold vs warm: same text and session config, so the first execution
     pays planning + execution and every repeat is a result-cache hit *)
  let c = Serve.Client.connect (`Unix sock) in
  let q0 = List.hd hot in
  let _, cold_ms = timed_query c q0 in
  let reps = if !quick then 20 else 100 in
  let warm_lat = Array.init reps (fun _ -> snd (timed_query c q0)) in
  let warm_ms = Array.fold_left ( +. ) 0. warm_lat /. float_of_int reps in
  Serve.Client.close c;
  Printf.printf
    "repeat query: cold %8.3fms   warm %8.3fms   (%.0fx over %d reps)\n%!"
    cold_ms warm_ms (cold_ms /. warm_ms) reps;
  record ~technique:"serve_cold" ~load_ms "serve_repeat" cold_ms;
  record ~technique:"serve_warm" "serve_repeat" warm_ms;
  if cold_ms < 5. *. warm_ms then
    Printf.printf "!! warm repeats below 5x faster than cold — investigate\n%!";
  (* mixed concurrent workload: N sessions, ~70%% repeats from the hot set
     (cache traffic), ~30%% fresh thresholds (plan + execute) *)
  let n_clients = 4 in
  let per_client = if !quick then 15 else 50 in
  let lat = Array.make n_clients [] in
  let sids = Array.make n_clients 0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init n_clients (fun ci ->
        Thread.create
          (fun () ->
            let cl = Serve.Client.connect (`Unix sock) in
            sids.(ci) <- Serve.Client.session cl;
            for j = 0 to per_client - 1 do
              let sql =
                if j mod 10 < 7 then List.nth hot (j mod List.length hot)
                else fresh ((ci * per_client) + j)
              in
              let _, ms = timed_query cl sql in
              lat.(ci) <- ms :: lat.(ci)
            done;
            Serve.Client.close cl)
          ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  (* cache hit/miss and rejection counters come off the server's stats
     response, so the JSON row records what the server saw, not a guess *)
  let cstat = Serve.Client.connect (`Unix sock) in
  let stats = Serve.Client.stats cstat in
  let cache_counters =
    let sub name =
      match Obs.Json.member name stats with
      | Some o ->
        List.filter_map
          (fun k ->
            match Obs.Json.member k o with
            | Some (Obs.Json.Num x) -> Some (name ^ "_" ^ k, int_of_float x)
            | _ -> None)
          [ "hits"; "misses"; "evictions" ]
      | None -> []
    in
    sub "plan_cache" @ sub "result_cache"
    @ (match Obs.Json.member "rejected" stats with
       | Some (Obs.Json.Num x) -> [ ("rejected", int_of_float x) ]
       | _ -> [])
  in
  Serve.Client.shutdown cstat;
  Serve.Client.close cstat;
  Serve.Server.wait srv;
  let pct p xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    if Array.length a = 0 then 0.
    else
      a.(min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a))))
  in
  let all_lat = List.concat (Array.to_list lat) in
  let qps = float_of_int (List.length all_lat) /. wall_s in
  let p50 = pct 0.5 all_lat and p95 = pct 0.95 all_lat in
  Printf.printf
    "%d sessions x %d requests: %.0f qps, p50 %.2fms, p95 %.2fms\n  %s\n%!"
    n_clients per_client qps p50 p95
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cache_counters));
  record ~technique:"serve_mixed" ~workers:n_clients ~counters:cache_counters
    ~qps ~p50_ms:p50 ~p95_ms:p95 "serve_mixed" (wall_s *. 1000.);
  Array.iteri
    (fun ci ms ->
      record ~technique:"serve_session" ~session:sids.(ci)
        ~qps:(float_of_int (List.length ms) /. wall_s)
        ~p50_ms:(pct 0.5 ms) ~p95_ms:(pct 0.95 ms) "serve_mixed"
        (List.fold_left ( +. ) 0. ms))
    lat;
  print_newline ()

(* ---- streaming appends: append-to-fresh-result latency ---- *)

let stream_bench () =
  Printf.printf
    "=== Streaming appends: incremental maintenance vs recompute ===\n\n";
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "si-stream-%d.sock" (Unix.getpid ()))
  in
  (* Floor the scale: below ~30k rows the pinned query recomputes in
     ~10ms and the streaming comparison measures RPC noise, not joins. *)
  let n_rows = max !rows 30_000 in
  let catalog, load_t =
    time (fun () ->
        let catalog = Catalog.create () in
        ignore
          (Workload.Basket.register catalog ~baskets:(n_rows / 5) ~items:200
             ~avg_size:5 ~seed);
        if !layout = `Column then Catalog.set_all_layouts catalog `Column;
        catalog)
  in
  let load_ms = load_t *. 1000. in
  let config =
    {
      Serve.Server.listen = `Unix sock;
      pool = 2;
      queue_cap = 256;
      plan_cache_cap = 64;
      result_cache_cap = 256;
      max_rows = None;
      maintain = true;
      metrics_addr = None;
      slow_ms = None;
      slow_log = None;
      trace_sample = 0.;
    }
  in
  let srv = Serve.Server.start ~config [ (!layout, catalog) ] in
  (* The pinned complex query: frequent item pairs, the paper's canonical
     market-basket iceberg join.  Its first execution caches the result and
     builds the §6 partial state; the equality join keys the delta folds
     into hash joins, so maintenance is O(Δ ⋈ basket), not a recompute. *)
  let sql =
    "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 WHERE \
     i1.bid = i2.bid AND i1.item < i2.item GROUP BY i1.item, i2.item HAVING \
     COUNT(*) >= 20"
  in
  let c = Serve.Client.connect (`Unix sock) in
  let t0 = Unix.gettimeofday () in
  ignore (Serve.Client.query c sql);
  let cold_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* Recompute reference: both caches bypassed, so each call pays planning
     plus execution — what every append cost before maintenance, when it
     stamped the plan stale and dropped the cached result. *)
  let c2 = Serve.Client.connect (`Unix sock) in
  ignore
    (Serve.Client.set c2
       [ ("result_cache", Obs.Json.Bool false);
         ("plan_cache", Obs.Json.Bool false) ]);
  let recompute_of () =
    let t0 = Unix.gettimeofday () in
    let r = Serve.Client.query c2 sql in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  ignore (recompute_of ());
  (* warm the plan *)
  (* Append bursts of ~0.1% of the table (at least 10 rows) — fresh
     baskets of 5 distinct items, the natural append traffic — each
     followed by a query: the measured cycle is append request (which
     folds the delta into the cached partials) + the query that serves
     it. *)
  let bursts = if !quick then 8 else 25 in
  let burst_rows = 5 * max 2 (n_rows / 5000) in
  let rng = Workload.Prng.create 99 in
  let basket_row bid item =
    Obs.Json.Arr
      [ Obs.Json.Num (float_of_int bid);
        Obs.Json.Str (Printf.sprintf "item%04d" item) ]
  in
  let cycle_lat = ref [] and append_lat = ref [] in
  let last = ref None in
  for b = 1 to bursts do
    (* bids beyond the generator's range; 5 distinct items per basket
       (offsets coprime to the item count keep the (bid, item) key) *)
    let rows_j =
      List.concat
        (List.init (burst_rows / 5)
           (fun k ->
             let bid = 1_000_000 + (b * 1000) + k in
             let base = Workload.Prng.int rng 200 in
             List.init 5 (fun i -> basket_row bid ((base + (7 * i)) mod 200))))
    in
    let t0 = Unix.gettimeofday () in
    ignore (Serve.Client.append c "basket" rows_j);
    let t1 = Unix.gettimeofday () in
    let r = Serve.Client.query c sql in
    append_lat := ((t1 -. t0) *. 1000.) :: !append_lat;
    cycle_lat := ((Unix.gettimeofday () -. t0) *. 1000.) :: !cycle_lat;
    if not (Serve.Client.cached r) then
      Printf.printf "!! burst %d fell out of the maintained cache\n%!" b;
    last := Some r
  done;
  (* Correctness spot-check: the final maintained payload row-diffs clean
     against an uncached recompute over everything appended.  The reference
     latency is the median of three runs — a single execution is noisy
     enough to swing the reported speedup by a few x. *)
  let recompute, recompute_ms =
    let runs = List.init 3 (fun _ -> recompute_of ()) in
    let sorted = List.sort (fun (_, a) (_, b) -> compare a b) runs in
    List.nth sorted 1
  in
  (match !last with
   | Some r ->
     let got = Serve.Client.relation_of_response r in
     let want = Serve.Client.relation_of_response recompute in
     if not (Core.Runner.same_result want got) then
       Printf.printf "!! maintained result diverged from recompute\n%!"
   | None -> ());
  Serve.Client.shutdown c2;
  Serve.Client.close c2;
  Serve.Client.close c;
  Serve.Server.wait srv;
  let pct p xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    if Array.length a = 0 then 0.
    else
      a.(min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a))))
  in
  let p50 = pct 0.5 !cycle_lat and p95 = pct 0.95 !cycle_lat in
  (* The server-side fold cost, from the serve.maint_ms histogram the
     worker records around each maintenance pass: mean for the prose line,
     count/p50/p95 as their own JSON row so `bench diff` tracks the fold
     latency separately from the full append-to-fresh-result cycle. *)
  let maint_h = Obs.Metrics.hist_read (Obs.Metrics.histogram "serve.maint_ms") in
  let maint =
    if maint_h.Obs.Metrics.hs_count = 0 then 0.
    else maint_h.Obs.Metrics.hs_sum /. float_of_int maint_h.Obs.Metrics.hs_count
  in
  let maint_p50 = Obs.Metrics.hist_quantile maint_h 0.5 in
  let maint_p95 = Obs.Metrics.hist_quantile maint_h 0.95 in
  let speedup = recompute_ms /. Float.max 1e-9 p50 in
  Printf.printf
    "pinned query over %d rows (cold %.2fms, recompute %.2fms)\n\
     %d bursts x %d rows: append-to-fresh-result p50 %.3fms p95 %.3fms\n\
     (append rpc p50 %.3fms, partial-state fold mean %.3fms)\n\
     serve.maint_ms histogram: count %d p50 %.3fms p95 %.3fms\n\
     maintenance speedup over recompute: %.1fx\n%!"
    n_rows cold_ms recompute_ms bursts burst_rows p50 p95 (pct 0.5 !append_lat)
    maint maint_h.Obs.Metrics.hs_count maint_p50 maint_p95 speedup;
  if speedup < 10. then
    Printf.printf
      "!! incremental refresh below 10x over recompute — investigate\n%!";
  record ~technique:"stream_maintain" ~load_ms ~p50_ms:p50 ~p95_ms:p95
    "stream_append" (List.fold_left ( +. ) 0. !cycle_lat);
  record ~technique:"stream_recompute" "stream_append" recompute_ms;
  record ~technique:"stream_maint_hist"
    ~counters:[ ("serve.maint_ms.count", maint_h.Obs.Metrics.hs_count) ]
    ~p50_ms:maint_p50 ~p95_ms:maint_p95 "stream_append"
    maint_h.Obs.Metrics.hs_sum;
  print_newline ()

(* ---- driver ---- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "diff" :: rest -> exit (diff_cmd rest)
  | args ->
  let rec parse_args = function
    | [] -> []
    | "--rows" :: n :: rest ->
      rows := int_of_string n;
      parse_args rest
    | "--workers" :: n :: rest ->
      par_workers := int_of_string n;
      parse_args rest
    | "--layout" :: l :: rest ->
      (layout :=
         match l with
         | "row" -> `Row
         | "column" | "col" -> `Column
         | other -> failwith ("unknown layout: " ^ other));
      parse_args rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse_args rest
    | "--no-vector" :: rest ->
      vector_on := false;
      parse_args rest
    | "--no-transfer" :: rest ->
      transfer_opt := Some false;
      parse_args rest
    | "--quick" :: rest ->
      quick := true;
      parse_args rest
    | "--cache-mb" :: n :: rest ->
      cache_mb_opt := Some (int_of_string n);
      parse_args rest
    | x :: rest -> x :: parse_args rest
  in
  let targets = parse_args args in
  (* The harness is explicit-only: `all` must not overwrite the committed
     regression baseline as a side effect. *)
  let all =
    (targets = [] || List.mem "all" targets) && not (List.mem "harness" targets)
  in
  let want t = all || List.mem t targets in
  let fig1_results = ref [] in
  if want "fig1" || want "fig3" then fig1_results := fig1 ();
  if want "fig2" then fig2 ();
  if want "fig3" then fig3 !fig1_results;
  if want "fig4" then fig4 ();
  if want "fig5" then fig5 ();
  if want "fig6" then fig6 ();
  if want "fig7" then fig7 ();
  if want "fig8" then fig8 ();
  if want "plans" then plans ();
  if want "ablate" then ablate ();
  if want "fang" then fang ();
  if want "par" then par ();
  if want "col" then col ();
  if want "vec" then vec ();
  if want "sic" then sic_bench ();
  if want "serve" then serve_bench ();
  if want "stream" then stream_bench ();
  if want "micro" then micro ();
  if List.mem "harness" targets then harness ();
  match !json_path with Some path -> write_json path | None -> ()
