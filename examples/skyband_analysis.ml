(* k-skyband analysis (Listing 2): find objects dominated by at most k
   others, under the three classic point distributions, and show how the
   derived subsumption predicate prunes the nested loop.

     dune exec examples/skyband_analysis.exe -- [n] [k]
*)
open Relalg

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 2000 in
  let k = try int_of_string Sys.argv.(2) with _ -> 10 in
  let sql = Workload.Queries.listing2 ~k in
  Printf.printf "k-skyband query (k = %d) over %d objects:\n  %s\n\n" k n sql;
  let query = Sqlfront.Parser.parse sql in
  List.iter
    (fun (name, dist) ->
      let catalog = Catalog.create () in
      ignore (Workload.Objects.register catalog ~n ~dist ~seed:7);
      let t0 = Unix.gettimeofday () in
      let baseline = Core.Runner.run_baseline catalog query in
      let t_base = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      let result, report = Core.Runner.run catalog query in
      let t_opt = Unix.gettimeofday () -. t0 in
      assert (Core.Runner.same_result baseline result);
      let stats = Option.get report.Core.Runner.nljp_stats in
      Printf.printf
        "%-14s  skyband size %4d   baseline %6.2fs   smart-iceberg %6.3fs (%.0fx)\n"
        name
        (Relation.cardinality result)
        t_base t_opt (t_base /. t_opt);
      Printf.printf
        "                pruned %d of %d outer tuples, %d inner evaluations, %d memo hits\n"
        stats.Core.Nljp.pruned stats.Core.Nljp.outer_rows stats.Core.Nljp.inner_evals
        stats.Core.Nljp.memo_hits;
      (match report.Core.Runner.nljp_describe with
       | Some d when name = "independent" ->
         print_newline ();
         print_endline "NLJP component queries (cf. Listing 7 of the paper):";
         print_string d
       | _ -> ());
      print_newline ())
    [ ("independent", Workload.Objects.Independent);
      ("correlated", Workload.Objects.Correlated);
      ("anticorrelated", Workload.Objects.Anticorrelated) ]
