(* The "notable player pairs" query of Example 2 / Listing 4: find pairs of
   teammates who played at least c seasons together and whose joint batting
   statistics are dominated by at most k other pairs.  Both query blocks are
   iceberg queries; the WITH block benefits from a-priori, the outer block
   from pruning and memoization.

     dune exec examples/player_pairs.exe -- [rows] [c] [k]
*)
open Relalg

let () =
  let rows = try int_of_string Sys.argv.(1) with _ -> 3000 in
  let c = try int_of_string Sys.argv.(2) with _ -> 3 in
  let k = try int_of_string Sys.argv.(3) with _ -> 20 in
  let catalog = Catalog.create () in
  let n = Workload.Baseball.register catalog ~rows ~seed:2017 in
  Workload.Baseball.build_indexes catalog;
  Printf.printf "player_performance: %d rows\n\n" n;
  let sql = Workload.Queries.pairs ~agg:`Avg ~c ~k () in
  print_endline "Query (the paper's Listing 4, over synthetic season data):";
  Printf.printf "  %s\n\n" sql;
  let query = Sqlfront.Parser.parse sql in
  let t0 = Unix.gettimeofday () in
  let baseline = Core.Runner.run_baseline catalog query in
  let t_base = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let result, report = Core.Runner.run catalog query in
  let t_opt = Unix.gettimeofday () -. t0 in
  Printf.printf "baseline      %6.2fs\nsmart-iceberg %6.2fs (%.0fx speedup)\n"
    t_base t_opt (t_base /. t_opt);
  Printf.printf "results %s; %d notable pairs\n\n"
    (if Core.Runner.same_result baseline result then "match" else "DIFFER")
    (Relation.cardinality result);
  print_endline "Per-block optimizer decisions:";
  print_string (Core.Runner.report_to_string report);
  print_newline ();
  print_endline "Notable pairs (pid1, pid2, dominating pairs):";
  print_string (Relation.to_string ~max_rows:15 (Relation.sorted result))
