(* Quickstart: run the paper's opening example — a market-basket iceberg
   query (Listing 1) — through the Smart-Iceberg pipeline.

     dune exec examples/quickstart.exe
*)
open Relalg

let () =
  (* 1. Build a catalog and register a table.  Keys matter: the safety
     checks of the optimizer reason over them. *)
  let catalog = Catalog.create () in
  ignore (Workload.Basket.register catalog ~baskets:400 ~items:60 ~avg_size:5 ~seed:42);

  (* 2. Write the iceberg query in SQL. *)
  let sql = Workload.Queries.listing1 ~threshold:25 in
  print_endline "Query (Listing 1 of the paper):";
  print_endline ("  " ^ sql);
  print_newline ();

  let query = Sqlfront.Parser.parse sql in

  (* 3. Run the baseline engine (full join, HAVING applied last)... *)
  let t0 = Unix.gettimeofday () in
  let baseline = Core.Runner.run_baseline catalog query in
  let t_base = Unix.gettimeofday () -. t0 in

  (* ...and the optimized pipeline (a-priori + memoization + pruning). *)
  let t0 = Unix.gettimeofday () in
  let optimized, report = Core.Runner.run catalog query in
  let t_opt = Unix.gettimeofday () -. t0 in

  Printf.printf "baseline : %6.3fs, %d result groups\n" t_base
    (Relation.cardinality baseline);
  Printf.printf "optimized: %6.3fs, %d result groups (%s)\n\n" t_opt
    (Relation.cardinality optimized)
    (if Core.Runner.same_result baseline optimized then "results match"
     else "RESULTS DIFFER — bug!");

  (* 4. What did the optimizer decide?  For this query, generalized a-priori
     applies (Example 6 of the paper): items appearing in fewer than 25
     baskets are filtered out before the self-join. *)
  print_endline "Optimizer decisions:";
  print_string (Core.Runner.report_to_string report);
  print_newline ();

  print_endline "Most frequent pairs:";
  let top =
    Ops.limit 10
      (Ops.order_by [ (Expr.col "col2", `Desc) ] optimized)
  in
  print_string (Relation.to_string ~max_rows:10 top)
