(* The classic Fang et al. iceberg algorithms (the paper's reference [9])
   on the market-basket workload: compute frequent item pairs over the
   self-join with probabilistic counting instead of a full group table,
   then contrast with the Smart-Iceberg framework, which avoids computing
   most of the join in the first place.

     dune exec examples/iceberg_classics.exe -- [baskets] [threshold]
*)
open Relalg

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let baskets = try int_of_string Sys.argv.(1) with _ -> 1500 in
  let threshold = try int_of_string Sys.argv.(2) with _ -> 25 in
  let catalog = Catalog.create () in
  let n = Workload.Basket.register catalog ~baskets ~items:300 ~avg_size:6 ~seed:1 in
  Printf.printf "basket: %d rows, threshold %d\n\n" n threshold;

  (* The join the iceberg sits on. *)
  let tbl = Catalog.find catalog Workload.Basket.table_name in
  let side q =
    Relation.make (Schema.requalify q tbl.Catalog.rel.Relation.schema)
      (Relation.rows tbl.Catalog.rel)
  in
  let joined, t_join =
    time (fun () ->
        Ops.hash_join
          ~left_keys:[ Expr.col ~q:"i1" "bid" ]
          ~right_keys:[ Expr.col ~q:"i2" "bid" ]
          ~residual:Expr.tt (side "i1") (side "i2"))
  in
  Printf.printf "self-join materialized: %d pairs in %.3fs\n\n"
    (Relation.cardinality joined) t_join;

  let item1 = Schema.index_of joined.Relation.schema ~q:"i1" "item" in
  let item2 = Schema.index_of joined.Relation.schema ~q:"i2" "item" in
  let config =
    { Fang.default_config with
      Fang.buckets = max 1024 (4 * Relation.cardinality joined / threshold) }
  in
  Printf.printf "%-12s %9s %11s %15s %14s\n" "algorithm" "time" "candidates"
    "false positives" "exact counters";
  List.iter
    (fun (name, alg) ->
      let (_, stats), t =
        time (fun () ->
            Fang.iceberg_count ~config ~algorithm:alg joined ~key:[ item1; item2 ]
              ~threshold)
      in
      Printf.printf "%-12s %8.3fs %11d %15d %14d\n" name t stats.Fang.candidates
        stats.Fang.false_positives stats.Fang.exact_counters)
    [ ("naive", Fang.Naive); ("coarse", Fang.Coarse_count);
      ("defer-count", Fang.Defer_count); ("multi-stage", Fang.Multi_stage) ];

  (* Smart-Iceberg never materializes the join at all. *)
  print_newline ();
  let q = Sqlfront.Parser.parse (Workload.Queries.listing1 ~threshold) in
  let (result, report), t_smart = time (fun () -> Core.Runner.run catalog q) in
  Printf.printf
    "Smart-Iceberg (a-priori + NLJP): %.3fs for %d frequent pairs —\n\
     the reducer shrinks the join input before any pair is formed:\n"
    t_smart (Relation.cardinality result);
  List.iter
    (fun rw -> Printf.printf "  %s\n" rw.Core.Optimizer.reducer_sql)
    report.Core.Runner.apriori
