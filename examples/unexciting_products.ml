(* The "unexciting products" query of Example 1 / Listing 3: a four-way
   self-join over an unpivoted key-value table, finding products strictly
   dominated on a pair of attributes by at least [threshold] same-category
   products.  This is the paper's showcase for combining generalized
   a-priori with NLJP pruning (Appendix D, Listings 10-11).

     dune exec examples/unexciting_products.exe -- [rows] [threshold]
*)
open Relalg

let () =
  let rows = try int_of_string Sys.argv.(1) with _ -> 3000 in
  let threshold = try int_of_string Sys.argv.(2) with _ -> 30 in
  let catalog = Catalog.create () in
  let n = Workload.Baseball.register_unpivoted catalog ~rows ~seed:99 in
  Workload.Baseball.build_indexes catalog;
  Printf.printf "perf_kv (unpivoted): %d rows\n\n" n;
  let sql = Workload.Queries.complex ~threshold in
  print_endline "Query (the paper's Listing 3 shape):";
  Printf.printf "  %s\n\n" sql;
  let query = Sqlfront.Parser.parse sql in
  let t0 = Unix.gettimeofday () in
  let baseline = Core.Runner.run_baseline catalog query in
  let t_base = Unix.gettimeofday () -. t0 in
  (* The paper's implementation could only apply prune+memo to this query
     (§7); our optimizer also derives the two a-priori reducers the
     Appendix D walkthrough describes.  Show both configurations. *)
  let run_with label tech =
    let t0 = Unix.gettimeofday () in
    let result, report = Core.Runner.run ~tech catalog query in
    let t = Unix.gettimeofday () -. t0 in
    Printf.printf "%-28s %6.2fs (%.1fx)  results %s\n" label t (t_base /. t)
      (if Core.Runner.same_result baseline result then "match" else "DIFFER");
    report
  in
  Printf.printf "%-28s %6.2fs\n" "baseline" t_base;
  let _ =
    run_with "prune+memo (paper's config)"
      { Core.Optimizer.apriori = false; memo = true; pruning = true }
  in
  let report = run_with "apriori+prune+memo (full)" Core.Optimizer.all_techniques in
  print_newline ();
  print_endline "Optimizer decisions for the full configuration";
  print_endline "(compare with the paper's Appendix D walkthrough, Listings 10-11):";
  print_string (Core.Runner.report_to_string report)
