(* smart-iceberg: command-line front end.

   Load CSV tables (or generate the synthetic workloads), then run iceberg
   SQL with chosen optimization techniques, explain the optimizer's
   decisions, or compare all technique combinations against the baseline.

     dune exec bin/iceberg_cli.exe -- run --table basket.csv \
       "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
        WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 20"
*)

open Relalg
open Cmdliner

(* ---- shared setup ---- *)

let load_tables ?layout ?(sic_mode = `Paged) catalog specs =
  List.iter
    (fun spec ->
      (* spec: path.csv[:key=col1+col2] — a .sic path loads the binary
         columnar format instead of parsing CSV (paged through the block
         cache by default; see --sic-resident). *)
      let path, key =
        match String.split_on_char ':' spec with
        | [ p ] -> (p, None)
        | [ p; k ] ->
          (match String.split_on_char '=' k with
           | [ "key"; cols ] -> (p, Some (String.split_on_char '+' cols))
           | _ -> failwith ("bad table spec: " ^ spec))
        | _ -> failwith ("bad table spec: " ^ spec)
      in
      let name = Filename.remove_extension (Filename.basename path) in
      let rel =
        if Filename.check_suffix path ".sic" then Sic.load ~mode:sic_mode path
        else Csv.load ?layout path
      in
      let keys = match key with Some k -> [ k ] | None -> [] in
      Catalog.add_table catalog ~keys name rel;
      Printf.printf "loaded %s: %d rows %s\n" name (Relation.cardinality rel)
        (Schema.to_string rel.Relation.schema))
    specs

let synth_catalog catalog kind rows =
  match kind with
  | "baseball" ->
    ignore (Workload.Baseball.register catalog ~rows ~seed:2017);
    ignore (Workload.Baseball.register_unpivoted catalog ~rows ~seed:2017);
    Workload.Baseball.build_indexes catalog;
    Printf.printf "generated %s and %s (%d rows each)\n" Workload.Baseball.table_name
      Workload.Baseball.unpivoted_name rows
  | "basket" ->
    let n =
      Workload.Basket.register catalog ~baskets:(rows / 5) ~items:200 ~avg_size:5
        ~seed:2017
    in
    Printf.printf "generated basket (%d rows)\n" n
  | "objects" ->
    ignore (Workload.Objects.register catalog ~n:rows ~dist:Workload.Objects.Independent ~seed:2017);
    Printf.printf "generated object (%d rows)\n" rows
  | other -> failwith ("unknown synthetic workload: " ^ other)

let layout_of_string = function
  | "row" -> `Row
  | "column" | "col" -> `Column
  | other -> failwith ("unknown layout: " ^ other)

let setup ?cache_mb ?(sic_resident = false) tables synth rows layout =
  (match cache_mb with
   | Some mb when mb > 0 -> Column.Blockcache.set_capacity_mb mb
   | _ -> ());
  let catalog = Catalog.create () in
  let layout = layout_of_string layout in
  let sic_mode = if sic_resident then `Resident else `Paged in
  load_tables ~layout ~sic_mode catalog tables;
  List.iter (fun kind -> synth_catalog catalog kind rows) synth;
  (* Synthetic generators register row-form tables; flip them here. *)
  if layout = `Column then Catalog.set_all_layouts catalog `Column;
  catalog

let tech_of_string = function
  | "none" -> Core.Optimizer.no_techniques
  | "apriori" -> Core.Optimizer.only `Apriori
  | "memo" -> Core.Optimizer.only `Memo
  | "pruning" | "prune" -> Core.Optimizer.only `Pruning
  | "all" -> Core.Optimizer.all_techniques
  | other -> failwith ("unknown technique set: " ^ other)

(* ---- commands ---- *)

let run_cmd tables synth rows layout cache_mb sic_resident tech workers
    no_vector no_transfer verbose max_rows explain analyze json trace sql =
  let catalog = setup ?cache_mb ~sic_resident tables synth rows layout in
  let nljp_config =
    { Core.Nljp.default_config with Core.Nljp.vector = not no_vector }
  in
  (* [None] defers to the SI_TRANSFER environment default in Runner. *)
  let transfer = if no_transfer then Some false else None in
  if explain then begin
    (* EXPLAIN mode: print the optimizer's plan and return — no execution. *)
    let q = Sqlfront.Parser.parse sql in
    let tech =
      if tech = "none" then Core.Optimizer.no_techniques else tech_of_string tech
    in
    print_string (Core.Explain.query ~tech ~nljp_config catalog q);
    0
  end
  else if analyze then begin
    (* EXPLAIN ANALYZE: execute with full instrumentation and print the
       annotated tree (estimates next to actuals, per-node Q-error) plus
       the plan-level summary.  Results are bag-equal to a plain run. *)
    let q = Sqlfront.Parser.parse sql in
    let tech_name = tech in
    let tech = tech_of_string tech in
    let t0 = Unix.gettimeofday () in
    let result, rep, node =
      Core.Analyze.run ~tech ~nljp_config ~workers ?transfer catalog q
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let flips = Core.Analyze.decision_flips catalog rep node in
    let s = Core.Analyze.summarize ~flips node in
    if json then
      print_endline (Obs.Json.to_string (Core.Analyze.document node s))
    else begin
      print_string (Relation.to_string ~max_rows (Relation.sorted result));
      Printf.printf "(%d rows in %.3fs, techniques: %s)\n\n"
        (Relation.cardinality result) elapsed tech_name;
      print_string (Core.Analyze.to_text node);
      print_newline ();
      print_string (Core.Analyze.summary_to_text s)
    end;
    0
  end
  else begin
    let root =
      match trace with None -> None | Some _ -> Some (Obs.Span.enter "query")
    in
    let q =
      match root with
      | None -> Sqlfront.Parser.parse sql
      | Some parent ->
        Obs.Span.with_span ~parent "parse" (fun _ -> Sqlfront.Parser.parse sql)
    in
    let t0 = Unix.gettimeofday () in
    let result, report =
      if tech = "none" then (Core.Runner.run_baseline ~workers catalog q, None)
      else
        let r, rep =
          Core.Runner.run ?span:root ~tech:(tech_of_string tech) ~nljp_config
            ~workers ?transfer catalog q
        in
        (r, Some rep)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    print_string (Relation.to_string ~max_rows (Relation.sorted result));
    Printf.printf "(%d rows in %.3fs, techniques: %s)\n" (Relation.cardinality result)
      elapsed tech;
    (match report with
     | Some rep when verbose ->
       print_newline ();
       print_endline "optimizer decisions:";
       print_string (Core.Runner.report_to_string rep)
     | _ -> ());
    (match root, trace with
     | Some sp, Some file ->
       Obs.Span.finish ~rows_out:(Relation.cardinality result) sp;
       let oc = open_out file in
       output_string oc (Obs.Json.to_string (Obs.Span.trace_json sp));
       output_char oc '\n';
       close_out oc;
       Printf.eprintf "trace written to %s\n%!" file
     | _ -> ());
    0
  end

let explain_cmd tables synth rows layout tech no_vector sql =
  let catalog = setup tables synth rows layout in
  let q = Sqlfront.Parser.parse sql in
  let tech =
    if tech = "none" then Core.Optimizer.no_techniques else tech_of_string tech
  in
  let nljp_config =
    { Core.Nljp.default_config with Core.Nljp.vector = not no_vector }
  in
  print_string (Core.Explain.query ~tech ~nljp_config catalog q);
  0

let compare_cmd tables synth rows layout workers sql =
  let catalog = setup tables synth rows layout in
  let q = Sqlfront.Parser.parse sql in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let base, base_t = time (fun () -> Core.Runner.run_baseline catalog q) in
  Printf.printf "%-10s %8.3fs  (%d rows)\n" "baseline" base_t (Relation.cardinality base);
  let vendor, vendor_t =
    time (fun () -> Core.Runner.run_baseline ~workers:4 catalog q)
  in
  Printf.printf "%-10s %8.3fs  %.1fx  %s\n" "parallel" vendor_t (base_t /. vendor_t)
    (if Core.Runner.same_result base vendor then "ok" else "RESULT MISMATCH");
  List.iter
    (fun name ->
      let (r, _), t =
        time (fun () ->
            Core.Runner.run ~tech:(tech_of_string name) ~workers catalog q)
      in
      Printf.printf "%-10s %8.3fs  %.1fx  %s\n" name t (base_t /. t)
        (if Core.Runner.same_result base r then "ok" else "RESULT MISMATCH"))
    [ "apriori"; "memo"; "pruning"; "all" ];
  0

let save_cmd tables synth rows name format block_size out =
  (match format with
   | "sic" -> ()
   | other -> failwith ("unknown save format: " ^ other));
  let catalog = setup tables synth rows "column" in
  let name =
    match (name, Catalog.table_names catalog) with
    | Some n, _ -> n
    | None, [ n ] -> n
    | None, names ->
      failwith
        ("--name required when several tables are loaded: "
        ^ String.concat ", " names)
  in
  let table = Catalog.find catalog name in
  let rel = Relation.to_layout `Column table.Catalog.rel in
  (match block_size with
   | None -> Sic.save out rel
   | Some bs ->
     (* Re-block through the streaming writer to honor the requested size. *)
     Sic.save_rows ~block_size:bs out rel.Relation.schema
       (Array.to_seq (Relation.rows rel)));
  let st = Unix.stat out in
  Printf.printf "saved %s: %d rows -> %s (%d bytes)\n" name
    (Relation.cardinality rel) out st.Unix.st_size;
  0

let calibrate_cmd rows layout tech workers json =
  (* Cost-model calibration: replay the synthetic workloads under EXPLAIN
     ANALYZE and tabulate estimated vs actual per technique. *)
  let catalog = setup [] [ "baseball"; "basket"; "objects" ] rows layout in
  let tech = tech_of_string tech in
  let threshold = max 5 (rows / 100) in
  let rows_of ~workload queries =
    Core.Calibrate.calibrate ~tech ~workers ~workload catalog queries
  in
  let all =
    rows_of ~workload:"baseball"
      [ ("skyband_k50", Workload.Queries.skyband ~k:50 ());
        ("pairs_c3_k20", Workload.Queries.pairs ~c:3 ~k:20 ());
        ("complex", Workload.Queries.complex ~threshold) ]
    @ rows_of ~workload:"basket"
        [ ("listing1", Workload.Queries.listing1 ~threshold:(max 5 (rows / 500))) ]
    @ rows_of ~workload:"objects"
        [ ("listing2", Workload.Queries.listing2 ~k:50) ]
  in
  if json then print_endline (Obs.Json.to_string (Core.Calibrate.to_json all))
  else print_string (Core.Calibrate.to_text all);
  0

let serve_cmd tables synth rows layouts cache_mb addr pool queue_cap plan_cap
    result_cap max_rows no_maintain metrics_addr slow_ms slow_log trace_sample =
  let layouts =
    match layouts with
    | "both" -> [ `Row; `Column ]
    | l -> [ layout_of_string l ]
  in
  let catalogs =
    List.map
      (fun l ->
        let cat =
          setup ?cache_mb tables synth rows
            (match l with `Row -> "row" | `Column -> "column")
        in
        (l, cat))
      layouts
  in
  let config =
    {
      Serve.Server.listen = Serve.Protocol.addr_of_string addr;
      pool;
      queue_cap;
      plan_cache_cap = plan_cap;
      result_cache_cap = result_cap;
      max_rows = (if max_rows <= 0 then None else Some max_rows);
      maintain = not no_maintain;
      metrics_addr =
        (match metrics_addr with
         | None | Some "" -> None
         | Some a -> Some (Serve.Protocol.addr_of_string a));
      slow_ms;
      slow_log = Some slow_log;
      trace_sample;
    }
  in
  let srv = Serve.Server.start ~config catalogs in
  Printf.printf "serving on %s (pool=%d queue=%d)\n%!"
    (Serve.Protocol.addr_to_string config.Serve.Server.listen)
    pool queue_cap;
  (match Serve.Server.metrics_addr srv with
   | Some a ->
     Printf.printf "metrics on %s (Prometheus text)\n%!"
       (Serve.Protocol.addr_to_string a)
   | None -> ());
  (match slow_ms with
   | Some th -> Printf.printf "slow-query log: %s (threshold %gms)\n%!" slow_log th
   | None ->
     if trace_sample > 0. then
       Printf.printf "trace-sample log: %s (fraction %g)\n%!" slow_log trace_sample);
  (* Runs until a client sends {"op":"shutdown"} (or the process is killed). *)
  Serve.Server.wait srv;
  print_endline "server stopped";
  0

(* Live terminal view over the server's [metrics] op: qps and rolling
   p50/p95 from the last-minute windows, cache hit rates, queue depth and
   maintenance outcomes, redrawn in place every [interval] seconds. *)
let do_monitor c interval frames =
  let module J = Obs.Json in
  let numf j name = match J.member name j with Some (J.Num x) -> x | _ -> 0. in
  let numi j name = int_of_float (numf j name) in
  let nested j outer name =
    match J.member outer j with Some o -> numf o name | None -> 0.
  in
  let rolling j name field =
    match J.member "rolling" j with
    | Some o -> (match J.member name o with Some r -> numf r field | None -> 0.)
    | None -> 0.
  in
  let pct hits misses =
    let tot = hits +. misses in
    if tot <= 0. then 0. else 100. *. hits /. tot
  in
  let frame = ref 0 in
  let continue = ref true in
  while !continue do
    let m = Serve.Client.metrics c in
    let counters =
      match J.member "counters" m with Some o -> o | None -> J.Obj []
    in
    let b = Buffer.create 1024 in
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string b s;
          Buffer.add_char b '\n')
        fmt
    in
    line "smart-iceberg monitor   uptime %.1fs   sessions %d   queue %d/%d   pool %d"
      (numf m "uptime_ms" /. 1000.)
      (numi m "sessions") (numi m "queue_depth") (numi m "queue_cap")
      (numi m "pool");
    line "queries       total %d   qps %.1f   errors %d   rejected %d"
      (numi counters "serve.queries")
      (rolling m "serve.queries" "rate")
      (numi counters "serve.errors")
      (numi counters "serve.rejected");
    line "latency       rolling p50 %.2fms  p95 %.2fms  (n=%.0f)   queue wait p95 %.2fms"
      (rolling m "serve.query_ms" "p50")
      (rolling m "serve.query_ms" "p95")
      (rolling m "serve.query_ms" "count")
      (rolling m "serve.queue_wait_ms" "p95");
    line "plan cache    hits %.0f  misses %.0f  (%.1f%%)   entries %.0f  evictions %.0f"
      (nested m "plan_cache" "hits")
      (nested m "plan_cache" "misses")
      (pct (nested m "plan_cache" "hits") (nested m "plan_cache" "misses"))
      (nested m "plan_cache" "entries")
      (nested m "plan_cache" "evictions");
    line "result cache  hits %.0f  misses %.0f  (%.1f%%)   entries %.0f  evictions %.0f"
      (nested m "result_cache" "hits")
      (nested m "result_cache" "misses")
      (pct (nested m "result_cache" "hits") (nested m "result_cache" "misses"))
      (nested m "result_cache" "entries")
      (nested m "result_cache" "evictions");
    line "maintenance   incremental %d  revalidated %d  recompute %d  plans refreshed %d"
      (numi counters "serve.maint_incremental")
      (numi counters "serve.maint_revalidate")
      (numi counters "serve.maint_recompute")
      (numi counters "serve.plan_refreshed");
    line "maint latency rolling p50 %.2fms  p95 %.2fms  (n=%.0f)   appends %d"
      (rolling m "serve.maint_ms" "p50")
      (rolling m "serve.maint_ms" "p95")
      (rolling m "serve.maint_ms" "count")
      (numi counters "serve.appends");
    (* home + clear-screen, then the frame: a flicker-free in-place redraw *)
    print_string "\027[H\027[2J";
    print_string (Buffer.contents b);
    flush stdout;
    incr frame;
    if frames > 0 && !frame >= frames then continue := false
    else Unix.sleepf interval
  done

let client_cmd addr analyze sets appends stats shutdown monitor interval frames
    sql =
  let c = Serve.Client.connect (Serve.Protocol.addr_of_string addr) in
  let parse_set kv =
    match String.index_opt kv '=' with
    | None -> failwith ("--set expects key=value, got " ^ kv)
    | Some i ->
      let k = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      let j =
        match (bool_of_string_opt v, int_of_string_opt v) with
        | Some b, _ -> Obs.Json.Bool b
        | None, Some n -> Obs.Json.Num (float_of_int n)
        | None, None -> Obs.Json.Str v
      in
      (k, j)
  in
  let print_result j =
    let rel = Serve.Client.relation_of_response j in
    print_string (Relation.to_string (Relation.sorted rel));
    Printf.printf "(%d rows in %.3fms%s)\n" (Serve.Client.rows_n j)
      (Serve.Client.ms j)
      (if Serve.Client.cached j then ", cached" else "");
    match Obs.Json.member "trace" j with
    | Some t -> print_string (Obs.Span.to_text (Obs.Span.of_json t))
    | None -> ()
  in
  (* --append TABLE:v1,v2,... — one row per occurrence; cells are typed by
     shape (int, float, else string), matching the CSV loader's coercions. *)
  let do_append spec =
    match String.index_opt spec ':' with
    | None -> failwith ("--append expects TABLE:v1,v2,..., got " ^ spec)
    | Some i ->
      let table = String.sub spec 0 i in
      let cells =
        String.split_on_char ',' (String.sub spec (i + 1) (String.length spec - i - 1))
      in
      let cell v =
        match (int_of_string_opt v, float_of_string_opt v) with
        | Some n, _ -> Obs.Json.Num (float_of_int n)
        | None, Some f -> Obs.Json.Num f
        | None, None -> Obs.Json.Str v
      in
      let resp = Serve.Client.append c table [ Obs.Json.Arr (List.map cell cells) ] in
      let f n =
        match Obs.Json.member n resp with
        | Some (Obs.Json.Num x) -> int_of_float x
        | _ -> 0
      in
      Printf.printf
        "appended %d row(s) to %s: incremental %d, revalidated %d, \
         invalidated %d, plans refreshed %d\n%!"
        (f "appended") table (f "incremental") (f "revalidated")
        (f "invalidated") (f "plans_refreshed")
  in
  let status = ref 0 in
  (try
     if sets <> [] then ignore (Serve.Client.set c (List.map parse_set sets));
     List.iter do_append appends;
     (match sql with
      | Some q -> print_result (Serve.Client.query ~analyze c q)
      | None -> ());
     if stats then print_endline (Obs.Json.to_string (Serve.Client.stats c));
     if monitor then do_monitor c interval frames;
     if shutdown then Serve.Client.shutdown c;
     (* With nothing else to do, read queries from stdin (one per line). *)
     if sql = None && not stats && not shutdown && not monitor && sets = []
        && appends = []
     then begin
       try
         while true do
           let line = String.trim (input_line stdin) in
           if line <> "" then
             try print_result (Serve.Client.query ~analyze c line)
             with Serve.Client.Server_error { code; message } ->
               Printf.printf "error (%s): %s\n%!" code message
         done
       with End_of_file -> ()
     end
   with Serve.Client.Server_error { code; message } ->
     Printf.eprintf "error (%s): %s\n" code message;
     status := 1);
  Serve.Client.close c;
  !status

(* ---- cmdliner plumbing ---- *)

let tables_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "table"; "t" ] ~docv:"FILE.csv[:key=a+b]"
        ~doc:"Load a CSV file as a table named after the file. An optional \
              $(b,key=col1+col2) suffix declares a candidate key (used by the \
              safety checks).")

let synth_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "synth" ] ~docv:"KIND"
        ~doc:"Generate a synthetic workload: $(b,baseball), $(b,basket) or \
              $(b,objects).")

let rows_arg =
  Arg.(
    value & opt int 10000
    & info [ "rows" ] ~docv:"N" ~doc:"Synthetic workload size.")

let layout_arg =
  Arg.(
    value & opt string "row"
    & info [ "layout" ] ~docv:"LAYOUT"
        ~doc:"Physical table layout: $(b,row) (boxed row arrays) or \
              $(b,column) (chunked columnar storage with zone maps; \
              filtered scans skip non-matching blocks).")

let cache_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-mb" ] ~docv:"MB"
        ~env:(Cmd.Env.info "SI_CACHE_MB")
        ~doc:"Block-cache budget for paged $(b,.sic) tables, in megabytes. \
              Decoded blocks and encoded column sets share this byte budget \
              under LRU eviction, so datasets larger than the cap execute \
              with bounded resident memory.")

let sic_resident_arg =
  Arg.(
    value & flag
    & info [ "sic-resident" ]
        ~doc:"Decode $(b,.sic) tables fully at load instead of paging \
              blocks through the cache on demand.")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.")

let tech_arg =
  Arg.(
    value & opt string "all"
    & info [ "techniques"; "O" ] ~docv:"SET"
        ~doc:"Optimizations to enable: $(b,none), $(b,apriori), $(b,memo), \
              $(b,pruning) or $(b,all).")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the smart path: NLJP chunks its outer \
              relation across $(docv) domains (and $(b,--techniques none) \
              parallelizes the baseline joins the same way). Results are \
              identical to sequential execution.")

let no_transfer_arg =
  Arg.(
    value & flag
    & info [ "no-transfer" ]
        ~doc:"Disable predicate transfer (Bloom semi-join reduction of the \
              base relations along equality join edges before NLJP). \
              Equivalent to $(b,SI_TRANSFER=0); mainly for ablation.")

let no_vector_arg =
  Arg.(
    value & flag
    & info [ "no-vector" ]
        ~doc:"Disable the vectorized NLJP inner loop (per-binding zone-map \
              block skipping + typed aggregation kernels over columnar \
              inner sides); the row-at-a-time inner path runs instead. \
              Mainly for ablation.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Show optimizer decisions.")

let max_rows_arg =
  Arg.(
    value & opt int 40
    & info [ "max-rows" ] ~docv:"N" ~doc:"Result rows to display.")

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print the optimizer's chosen plan (a-priori reducers, NLJP \
              split, inner access path, cost estimates) and exit without \
              executing the query.")

let analyze_flag =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:"Execute the query with full instrumentation and print the \
              operator tree annotated with estimated vs actual cardinality, \
              per-node Q-error, self/cumulative wall time and operator \
              counters, plus a plan summary (worst estimates, decision \
              flips). Results are identical to a plain run.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"With $(b,--analyze) (or under $(b,calibrate)), emit the \
              annotated tree and summary as JSON instead of text.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~env:(Cmd.Env.info "SI_TRACE")
        ~doc:"Record the query lifecycle (parse, optimize, execute spans \
              with row counts and operator counters) and write the trace \
              as JSON to $(docv).")

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Run an iceberg query")
    Term.(
      const run_cmd $ tables_arg $ synth_arg $ rows_arg $ layout_arg
      $ cache_mb_arg $ sic_resident_arg $ tech_arg
      $ workers_arg $ no_vector_arg $ no_transfer_arg $ verbose_arg
      $ max_rows_arg $ explain_flag $ analyze_flag $ json_flag $ trace_arg
      $ sql_arg)

let save_name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"TABLE"
        ~doc:"Table to save (defaults to the only loaded table).")

let save_format_arg =
  Arg.(
    value & opt string "sic"
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format; only $(b,sic) (compressed binary columnar).")

let save_block_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "block-size" ] ~docv:"N"
        ~doc:"Rows per block (default: the store's block size).")

let save_out_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OUT.sic" ~doc:"Output path.")

let save_t =
  Cmd.v
    (Cmd.info "save"
       ~doc:"Save a loaded or synthetic table as a compressed .sic columnar \
             file: frame-of-reference/run-length encoded blocks plus a \
             footer with schema, dictionaries, zone maps and Bloom filters, \
             so later runs load it without CSV parsing (and can page \
             blocks on demand)")
    Term.(
      const save_cmd $ tables_arg $ synth_arg $ rows_arg $ save_name_arg
      $ save_format_arg $ save_block_size_arg $ save_out_arg)

let calibrate_t =
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Replay the synthetic workloads under EXPLAIN ANALYZE and \
             tabulate the cost model's estimates against measured \
             cardinalities, keep ratios and technique payoffs")
    Term.(
      const calibrate_cmd $ rows_arg $ layout_arg $ tech_arg $ workers_arg
      $ json_flag)

let explain_t =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the optimizer's chosen plan without executing the query")
    Term.(
      const explain_cmd $ tables_arg $ synth_arg $ rows_arg $ layout_arg
      $ tech_arg $ no_vector_arg $ sql_arg)

let compare_t =
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Time the query under every technique set against the baseline")
    Term.(
      const compare_cmd $ tables_arg $ synth_arg $ rows_arg $ layout_arg
      $ workers_arg $ sql_arg)

let addr_arg =
  Arg.(
    value
    & opt string "unix:/tmp/iceberg-serve.sock"
    & info [ "addr"; "a" ] ~docv:"ADDR"
        ~doc:"Listen/connect address: $(b,unix:/path/to.sock) or \
              $(b,tcp:host:port).")

let serve_layouts_arg =
  Arg.(
    value & opt string "both"
    & info [ "layout" ] ~docv:"LAYOUT"
        ~doc:"Physical layouts to load: $(b,row), $(b,column) or $(b,both). \
              With $(b,both) each session picks its layout via \
              $(b,set layout=...).")

let pool_arg =
  Arg.(
    value & opt int 2
    & info [ "pool" ] ~docv:"N"
        ~doc:"Worker domains executing queries off the job queue.")

let queue_cap_arg =
  Arg.(
    value & opt int 32
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:"Admission-control high-water mark: requests beyond $(docv) \
              queued jobs are rejected with an $(b,overloaded) response \
              instead of buffered.")

let plan_cap_arg =
  Arg.(
    value & opt int 64
    & info [ "plan-cache" ] ~docv:"N" ~doc:"Plan (prepared-statement) cache capacity.")

let result_cap_arg =
  Arg.(
    value & opt int 128
    & info [ "result-cache" ] ~docv:"N" ~doc:"Result cache capacity.")

let serve_max_rows_arg =
  Arg.(
    value & opt int 0
    & info [ "max-rows" ] ~docv:"N"
        ~doc:"Truncate query responses to $(docv) rows (0 = unlimited).")

let no_maintain_flag =
  Arg.(
    value & flag
    & info [ "no-maintain" ]
        ~doc:"Disable incremental result maintenance: appends drop affected \
              result-cache entries instead of folding the delta into their \
              algebraic partial state.")

let set_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "set" ] ~docv:"KEY=VALUE"
        ~doc:"Session config before anything else runs: $(b,layout=column), \
              $(b,workers=4), $(b,transfer=false), $(b,tech=memo+pruning), \
              $(b,plan_cache=false), $(b,result_cache=false).")

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print server statistics as JSON.")

let shutdown_flag =
  Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to stop.")

let append_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "append" ] ~docv:"TABLE:v1,v2,..."
        ~doc:"Append one row to $(docv) on the server (repeatable). Cells \
              are typed by shape: int, float, else string.")

let client_sql_arg =
  Arg.(
    value & pos 0 (some string) None
    & info [] ~docv:"SQL"
        ~doc:"Query to run; omitted (and with no other action), queries are \
              read from stdin one per line.")

let metrics_addr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-addr" ] ~docv:"ADDR"
        ~doc:"Expose Prometheus text metrics over plain HTTP on $(docv) \
              (HOST:PORT, port 0 for ephemeral, or a unix:PATH socket).")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:"Log queries taking at least $(docv) milliseconds to the \
              slow-query log as JSONL (query text, session config, cache \
              disposition, per-node analyze summary). Per-session \
              overridable with $(b,set slow_ms=...). Off by default.")

let slow_log_arg =
  Arg.(
    value
    & opt string "iceberg-slow.jsonl"
    & info [ "slow-log" ] ~docv:"FILE"
        ~doc:"Slow-query log path (opened lazily on the first record).")

let trace_sample_arg =
  Arg.(
    value & opt float 0.
    & info [ "trace-sample" ] ~docv:"FRACTION"
        ~doc:"Run this fraction (0..1) of queries fully instrumented \
              (bypassing both caches) and log their complete span trees to \
              the slow-query log, so est-vs-actual coverage includes fast \
              queries. Per-session overridable with \
              $(b,set trace_sample=...).")

let monitor_flag =
  Arg.(
    value & flag
    & info [ "monitor" ]
        ~doc:"Live terminal view of server health: qps, rolling p50/p95 \
              latency, cache hit rates, queue depth and maintenance \
              outcomes, polled from the metrics op and redrawn in place.")

let interval_arg =
  Arg.(
    value & opt float 2.
    & info [ "interval" ] ~docv:"SECONDS"
        ~doc:"Refresh interval for $(b,--monitor).")

let frames_arg =
  Arg.(
    value & opt int 0
    & info [ "frames" ] ~docv:"N"
        ~doc:"Exit $(b,--monitor) after $(docv) refreshes (0 = run until \
              interrupted).")

let serve_t =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Start the multi-session query server: a worker-domain pool \
             behind a bounded admission queue, with a shared plan cache \
             (prepared statements keyed by normalized query + session \
             config) and a stamp-keyed result cache maintained \
             incrementally across appends")
    Term.(
      const serve_cmd $ tables_arg $ synth_arg $ rows_arg $ serve_layouts_arg
      $ cache_mb_arg $ addr_arg $ pool_arg $ queue_cap_arg $ plan_cap_arg
      $ result_cap_arg $ serve_max_rows_arg $ no_maintain_flag
      $ metrics_addr_arg $ slow_ms_arg $ slow_log_arg $ trace_sample_arg)

let client_t =
  Cmd.v
    (Cmd.info "client"
       ~doc:"Connect to a running server and run queries, append rows, \
             tweak session config, fetch statistics or request shutdown")
    Term.(
      const client_cmd $ addr_arg $ analyze_flag $ set_arg $ append_arg
      $ stats_flag $ shutdown_flag $ monitor_flag $ interval_arg $ frames_arg
      $ client_sql_arg)

let main =
  Cmd.group
    (Cmd.info "smart-iceberg" ~version:"1.0"
       ~doc:"Iceberg query optimizer (SIGMOD'17 reproduction)")
    [ run_t; explain_t; compare_t; calibrate_t; save_t; serve_t; client_t ]

let () = exit (Cmd.eval' main)
